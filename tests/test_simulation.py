"""Tests of the fault-injecting execution simulator and Monte-Carlo estimator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.reliability import ReliabilityModel
from repro.core.schedule import Schedule, TaskDecision
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform
from repro.simulation.engine import simulate_schedule
from repro.simulation.faults import FaultInjector
from repro.simulation.montecarlo import (
    analytic_schedule_reliability,
    run_monte_carlo,
)


def chain_schedule(speed=1.0, lambda0=1e-3, reexecute=()):
    graph = generators.chain([2.0, 1.0, 3.0])
    model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0, sensitivity=3.0)
    platform = Platform(1, ContinuousSpeeds(0.1, 1.0), reliability_model=model)
    mapping = Mapping.single_processor(graph)
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        if t in reexecute:
            decisions[t] = TaskDecision.reexecuted(t, w, speed, speed)
        else:
            decisions[t] = TaskDecision.single(t, w, speed)
    return Schedule(mapping, platform, decisions)


class TestFaultInjector:
    def test_failure_probability_matches_model(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-2)
        injector = FaultInjector(model, rng=0, poisson=False)
        schedule = chain_schedule(speed=0.5)
        execution = schedule.decisions["T0"].executions[0]
        assert injector.failure_probability(execution) == pytest.approx(
            model.failure_probability(2.0, 0.5)
        )

    def test_poisson_vs_first_order(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-2)
        schedule = chain_schedule(speed=0.5)
        execution = schedule.decisions["T2"].executions[0]
        poisson = FaultInjector(model, rng=0, poisson=True).failure_probability(execution)
        first_order = FaultInjector(model, rng=0, poisson=False).failure_probability(execution)
        assert poisson <= first_order
        assert poisson == pytest.approx(1.0 - math.exp(-first_order))

    def test_sample_fault_time_within_duration_or_none(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=0.5)
        injector = FaultInjector(model, rng=1)
        schedule = chain_schedule(speed=0.5)
        execution = schedule.decisions["T2"].executions[0]
        for _ in range(50):
            t = injector.sample_fault_time(execution)
            assert t is None or 0.0 <= t <= execution.duration

    def test_zero_rate_never_fails(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=0.0)
        injector = FaultInjector(model, rng=0)
        schedule = chain_schedule()
        execution = schedule.decisions["T0"].executions[0]
        assert injector.failure_probability(execution) == 0.0
        assert not injector.sample_failure(execution)


class TestSimulateSchedule:
    def test_fault_free_run_matches_analytic_makespan_and_energy(self):
        schedule = chain_schedule(speed=0.5)
        result = simulate_schedule(schedule)
        assert result.success
        assert result.makespan == pytest.approx(schedule.makespan())
        assert result.energy == pytest.approx(schedule.energy())
        assert result.worst_case_energy == pytest.approx(schedule.energy())

    def test_fault_free_parallel_run(self):
        graph = generators.random_layered_dag(3, 3, seed=4)
        platform = Platform(3, ContinuousSpeeds(0.1, 1.0))
        mapping = critical_path_mapping(graph, 3, fmax=1.0).mapping
        schedule = Schedule.uniform_speed(mapping, platform, 0.8)
        result = simulate_schedule(schedule)
        assert result.makespan == pytest.approx(schedule.makespan())
        assert len(result.trace) == graph.num_tasks

    def test_successful_first_attempt_skips_reexecution(self):
        schedule = chain_schedule(speed=1.0, lambda0=0.0, reexecute=("T1",))
        result = simulate_schedule(schedule)
        # Only one attempt of T1 ran, so the observed energy and makespan are
        # below the worst-case accounting.
        assert result.energy < schedule.energy()
        assert result.makespan < schedule.makespan()
        assert result.num_attempts == 3

    def test_worst_case_mode_runs_both_attempts(self):
        schedule = chain_schedule(speed=1.0, lambda0=0.0, reexecute=("T1",))
        result = simulate_schedule(schedule, skip_second_execution_on_success=False)
        assert result.energy == pytest.approx(schedule.energy())
        assert result.makespan == pytest.approx(schedule.makespan())

    def test_certain_failure_marks_task_failed(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e6)
        injector = FaultInjector(model, rng=0)
        schedule = chain_schedule(speed=0.5)
        result = simulate_schedule(schedule, injector=injector)
        assert not result.success
        assert result.failed_tasks

    def test_trace_is_time_consistent(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=0.3)
        injector = FaultInjector(model, rng=3)
        schedule = chain_schedule(speed=0.5, reexecute=("T0", "T2"))
        result = simulate_schedule(schedule, injector=injector)
        for event in result.trace:
            assert event.end >= event.start
        # Events on the single processor never overlap.
        ordered = sorted(result.trace, key=lambda e: e.start)
        for a, b in zip(ordered[:-1], ordered[1:]):
            assert b.start >= a.end - 1e-12

    def test_energy_by_processor_sums_to_total(self):
        graph = generators.random_layered_dag(3, 2, seed=6)
        platform = Platform(2, ContinuousSpeeds(0.1, 1.0))
        mapping = critical_path_mapping(graph, 2, fmax=1.0).mapping
        schedule = Schedule.uniform_speed(mapping, platform, 1.0)
        result = simulate_schedule(schedule)
        assert sum(result.energy_by_processor(2)) == pytest.approx(result.energy)


class TestMonteCarlo:
    def test_analytic_reliability_product(self):
        schedule = chain_schedule(speed=0.5, lambda0=1e-2)
        model = schedule.platform.reliability()
        expected = 1.0
        for t in schedule.graph.tasks():
            expected *= 1.0 - (1.0 - math.exp(
                -model.fault_rate(0.5) * schedule.graph.weight(t) / 0.5))
        assert analytic_schedule_reliability(schedule) == pytest.approx(expected)

    def test_monte_carlo_matches_analytic(self):
        schedule = chain_schedule(speed=0.5, lambda0=5e-2)
        summary = run_monte_carlo(schedule, trials=3000, seed=7)
        assert summary.within_confidence()
        assert 0.0 < summary.success_rate <= 1.0
        assert summary.mean_energy <= summary.mean_worst_case_energy + 1e-9

    def test_reexecution_improves_reliability_at_energy_cost(self):
        single = chain_schedule(speed=0.5, lambda0=5e-2)
        reexec = chain_schedule(speed=0.5, lambda0=5e-2, reexecute=("T0", "T1", "T2"))
        mc_single = run_monte_carlo(single, trials=2000, seed=1)
        mc_reexec = run_monte_carlo(reexec, trials=2000, seed=2)
        assert mc_reexec.success_rate > mc_single.success_rate
        assert mc_reexec.mean_worst_case_energy > mc_single.mean_worst_case_energy

    def test_slowing_down_degrades_reliability(self):
        fast = chain_schedule(speed=1.0, lambda0=5e-2)
        slow = chain_schedule(speed=0.4, lambda0=5e-2)
        assert analytic_schedule_reliability(slow) < analytic_schedule_reliability(fast)
        mc_fast = run_monte_carlo(fast, trials=1500, seed=3)
        mc_slow = run_monte_carlo(slow, trials=1500, seed=4)
        assert mc_slow.success_rate < mc_fast.success_rate

    def test_trials_validation(self):
        schedule = chain_schedule()
        with pytest.raises(ValueError):
            run_monte_carlo(schedule, trials=0)
