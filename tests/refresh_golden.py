"""Regenerate the golden-regression snapshots under ``tests/golden/``.

Each snapshot stores one scenario's *smoke-size* parameters together with the
canonicalised result of running it, so ``tests/test_golden.py`` can replay
the exact stored configuration later (immune to environment overrides like
``REPRO_E11_TRIALS`` changing the registry's smoke defaults at import time)
and compare field by field.

Regenerate intentionally -- after a change that is *supposed* to alter
experiment output -- with::

    make refresh-golden

and commit the resulting JSON diffs alongside the change that caused them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.campaign.cache import canonicalize          # noqa: E402
from repro.campaign.registry import iter_scenarios     # noqa: E402

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for spec in iter_scenarios():
        params = spec.params(smoke=True)
        result = spec.runner(**params)
        payload = {
            "scenario": spec.name,
            "experiment": spec.experiment,
            "params": canonicalize(params),
            "result": canonicalize(result),
        }
        path = GOLDEN_DIR / f"{spec.name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"wrote {path.relative_to(Path.cwd())}"
              if path.is_relative_to(Path.cwd()) else f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
