"""Tests of the columnar interchange tier (``repro.core.columnar``).

Covers the strict wire parser (fast rows vs fallback rows), the
classification columns the batch planner routes on, subsetting
(``take``), content-key parity between the templated columnar hasher and
the scalar ``problem_content_key`` path, the vectorized engine request
keys, campaign problem-grid expansion determinism, and the lazy-result
pickling regression (results cross the campaign process pool without
forcing schedule materialization).
"""

from __future__ import annotations

import pickle

import pytest

from repro.api.engine import Engine, problem_content_key
from repro.api.types import SolveBatchRequest
from repro.campaign.sweep import expand_problem_batch
from repro.core.columnar import KIND_BICRIT, KIND_TRICRIT, ProblemBatch
from repro.core.problem_io import problem_from_dict, problem_to_dict
from repro.solvers.batch import (
    LazyScheduleResult,
    plan_batch,
    solve_batch,
)

from tests.test_batch_solvers import (
    chain_problem,
    fork_problem,
    tricrit_chain_problem,
)


def _payloads():
    problems = [
        chain_problem([1.0, 2.0, 0.5], 1.3),
        chain_problem([4.0, 0.0, 1.0, 2.5], 1.1),
        fork_problem(2.0, [1.0, 0.7, 1.3], 1.5),
        tricrit_chain_problem([1.0, 0.0, 2.0], 2.5),
        tricrit_chain_problem([0.5, 0.25], 3.0),
    ]
    return [problem_to_dict(p) for p in problems]


# ----------------------------------------------------------------------
# parsing and classification
# ----------------------------------------------------------------------
class TestFromWire:
    def test_fast_rows(self):
        batch = ProblemBatch.from_wire(_payloads())
        assert len(batch) == 5
        assert list(batch.fallback_indices()) == []
        cols = batch.columns
        assert list(cols["kind"]) == [KIND_BICRIT, KIND_BICRIT, KIND_BICRIT,
                                      KIND_TRICRIT, KIND_TRICRIT]
        assert list(cols["is_chain"]) == [True, True, False, True, True]
        assert list(cols["is_fork"])[2]
        assert list(cols["num_tasks"]) == [3, 4, 4, 3, 2]
        assert list(cols["num_positive"]) == [3, 3, 4, 2, 2]
        assert list(cols["single_processor"]) == [True, True, False,
                                                  True, True]

    def test_unparseable_row_falls_back(self):
        rows = _payloads()
        rows.insert(2, {"format_version": 1, "kind": "bicrit",
                        "mystery": True})
        batch = ProblemBatch.from_wire(rows)
        assert list(batch.fallback_indices()) == [2]
        assert bool(batch.columns["fallback"][2])
        # the surrounding fast rows still parsed columnar
        assert not bool(batch.columns["fallback"][1])

    def test_exotic_but_valid_payload_falls_back_and_solves(self):
        # A join graph is valid wire but outside the chain/fork fast set.
        chain = _payloads()[0]
        join = dict(chain)
        join["graph"] = {"format_version": 1,
                         "tasks": [{"id": "a", "weight": 1.0},
                                   {"id": "b", "weight": 1.0},
                                   {"id": "c", "weight": 1.0}],
                         "edges": [["a", "c"], ["b", "c"]]}
        join["mapping"] = [["a", "b", "c"]]
        batch = ProblemBatch.from_wire([chain, join])
        assert list(batch.fallback_indices()) == [1]
        results = solve_batch(batch)
        assert len(results) == 2
        assert all(r.status in ("optimal", "infeasible") for r in results)

    def test_from_problems_round_trip(self):
        problems = [problem_from_dict(p) for p in _payloads()]
        batch = ProblemBatch.from_problems(problems)
        assert len(batch) == len(problems)
        assert batch.content_keys() == [problem_content_key(p)
                                        for p in problems]

    def test_take_preserves_rows(self):
        batch = ProblemBatch.from_wire(_payloads())
        sub = batch.take([0, 2, 4])
        assert len(sub) == 3
        keys = batch.content_keys()
        assert sub.content_keys() == [keys[0], keys[2], keys[4]]
        assert list(sub.columns["num_tasks"]) == [3, 4, 2]


# ----------------------------------------------------------------------
# key parity: templated columnar hashing == scalar json.dumps hashing
# ----------------------------------------------------------------------
class TestKeyParity:
    def test_content_keys_match_scalar_path(self):
        payloads = _payloads()
        batch = ProblemBatch.from_wire(payloads)
        expected = [problem_content_key(problem_from_dict(p))
                    for p in payloads]
        assert batch.content_keys() == expected

    def test_content_keys_match_on_fallback_rows(self):
        rows = _payloads()
        rows.append({**rows[0],
                     "graph": {"format_version": 1,
                               "tasks": [{"id": "a", "weight": 1.0},
                                         {"id": "b", "weight": 1.0},
                                         {"id": "c", "weight": 1.0}],
                               "edges": [["a", "c"], ["b", "c"]]},
                     "mapping": [["a", "b", "c"]]})
        batch = ProblemBatch.from_wire(rows)
        assert len(batch.fallback_indices()) == 1
        expected = [problem_content_key(problem_from_dict(p)) for p in rows]
        assert batch.content_keys() == expected

    def test_vectorized_request_keys_match_scalar(self):
        engine = Engine(store=None)
        payloads = _payloads()
        batch = ProblemBatch.from_wire(payloads)
        problems = [problem_from_dict(p) for p in payloads]
        for solver, options in (("auto", {}),
                                ("bicrit-closed-form", {"validate": False})):
            vec = engine._batch_request_keys(batch.content_keys(),
                                             solver, options)
            scalar = [engine._request_key(p, solver, options)
                      for p in problems]
            assert vec == scalar

    def test_request_carries_parsed_batch(self):
        req = SolveBatchRequest.from_dict({"problems": _payloads()})
        assert isinstance(req.batch, ProblemBatch)
        assert len(req.batch) == 5
        # in-process construction (object lists) leaves it unset
        assert SolveBatchRequest(problems=[object()]).batch is None


# ----------------------------------------------------------------------
# planning routes
# ----------------------------------------------------------------------
class TestColumnarPlan:
    def test_kernel_counts(self):
        batch = ProblemBatch.from_wire(_payloads())
        plan = plan_batch(batch)
        counts = plan.kernel_counts()
        assert counts["chain-closed-form"] == 2
        assert counts["fork-closed-form"] == 1
        assert counts["tricrit-chain-subsets"] == 2

    def test_contexts_rejected_for_batches(self):
        batch = ProblemBatch.from_wire(_payloads())
        with pytest.raises(ValueError, match="contexts"):
            plan_batch(batch, contexts=[None] * len(batch))

    def test_unroutable_solver_goes_legacy(self):
        batch = ProblemBatch.from_wire(_payloads()[:2])
        plan = plan_batch(batch, "bicrit-convex")
        assert len(plan.legacy_indices) == 2


# ----------------------------------------------------------------------
# campaign problem grids
# ----------------------------------------------------------------------
class TestProblemGrids:
    ENTRY = {"structure": "chain",
             "grid": {"num_tasks": [3, 5], "slack": [1.2, 2.0]},
             "seeds": 2, "base_seed": 7}

    def test_deterministic_expansion(self):
        a = expand_problem_batch(self.ENTRY)
        b = expand_problem_batch(self.ENTRY)
        assert len(a) == 8
        assert a.content_keys() == b.content_keys()
        assert not len(a.fallback_indices())

    def test_grids_solve_columnar(self):
        batch = expand_problem_batch({"kind": "tricrit", "structure": "chain",
                                      "grid": {"num_tasks": [4]},
                                      "seeds": 2, "base_seed": 3})
        results = solve_batch(batch)
        assert [r.solver for r in results] == ["tricrit-chain-exact"] * 2

    def test_payloads_round_trip_object_parser(self):
        batch = expand_problem_batch({"structure": "fork",
                                      "grid": {"num_tasks": [4]},
                                      "seeds": 2, "base_seed": 1})
        for payload in batch.payloads:
            problem_from_dict(payload)

    def test_rejects_unknown_keys(self):
        with pytest.raises(KeyError, match="unknown"):
            expand_problem_batch({"structure": "chain", "bogus": 1})


# ----------------------------------------------------------------------
# lazy results survive the campaign process pool (pickling regression)
# ----------------------------------------------------------------------
class TestLazyPickling:
    def _assert_lazy_round_trip(self, results, monkeypatch):
        import repro.core.problems as problems_mod

        calls = {"n": 0}
        orig = problems_mod.BiCritProblem.__post_init__

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return orig(self, *args, **kwargs)

        monkeypatch.setattr(problems_mod.BiCritProblem, "__post_init__",
                            counting)
        restored = [pickle.loads(pickle.dumps(r)) for r in results]
        assert calls["n"] == 0, "pickling forced problem materialization"
        return restored

    def test_object_path_results(self, monkeypatch):
        results = solve_batch([chain_problem([1.0, 2.0], 1.3),
                               tricrit_chain_problem([1.0, 2.0], 2.5)])
        assert all(isinstance(r, LazyScheduleResult) for r in results)
        restored = self._assert_lazy_round_trip(results, monkeypatch)
        monkeypatch.undo()
        for before, after in zip(results, restored):
            assert repr(after.energy) == repr(before.energy)
            assert after.status == before.status
            # materialization still works after the round trip
            assert after.schedule is not None
            assert dict(after.metadata)["dispatch"] == \
                dict(before.metadata)["dispatch"]

    def test_columnar_results(self, monkeypatch):
        batch = ProblemBatch.from_wire(_payloads())
        results = solve_batch(batch)
        restored = self._assert_lazy_round_trip(results, monkeypatch)
        monkeypatch.undo()
        for before, after in zip(results, restored):
            assert repr(after.energy) == repr(before.energy)
            assert after.wire_view == before.wire_view
            assert after.schedule is not None
