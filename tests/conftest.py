"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problems import BiCritProblem, TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import (
    ContinuousSpeeds,
    DiscreteSpeeds,
    IncrementalSpeeds,
    VddHoppingSpeeds,
)
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


@pytest.fixture
def continuous_platform() -> Platform:
    """One processor, continuous speeds in [0.1, 1.0]."""
    return Platform(1, ContinuousSpeeds(0.1, 1.0))


@pytest.fixture
def wide_continuous_platform() -> Platform:
    """Many processors, effectively unbounded continuous speeds."""
    return Platform(16, ContinuousSpeeds(0.001, 100.0))


@pytest.fixture
def vdd_platform() -> Platform:
    return Platform(2, VddHoppingSpeeds([0.2, 0.4, 0.6, 0.8, 1.0]))


@pytest.fixture
def discrete_platform() -> Platform:
    return Platform(2, DiscreteSpeeds([0.2, 0.4, 0.6, 0.8, 1.0]))


@pytest.fixture
def incremental_platform() -> Platform:
    return Platform(1, IncrementalSpeeds(0.2, 1.0, 0.1))


@pytest.fixture
def reliability_model() -> ReliabilityModel:
    return ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4, sensitivity=3.0)


@pytest.fixture
def small_chain_graph():
    return generators.chain([2.0, 1.0, 3.0, 2.5])


@pytest.fixture
def small_fork_graph():
    return generators.fork(2.0, [1.0, 3.0, 2.0])


@pytest.fixture
def small_chain_problem(small_chain_graph, continuous_platform):
    mapping = Mapping.single_processor(small_chain_graph)
    total = small_chain_graph.total_weight()
    return BiCritProblem(mapping=mapping, platform=continuous_platform,
                         deadline=1.5 * total / continuous_platform.fmax)


@pytest.fixture
def small_fork_problem(small_fork_graph):
    platform = Platform(4, ContinuousSpeeds(0.05, 10.0))
    mapping = Mapping.one_task_per_processor(small_fork_graph)
    deadline = 1.5 * small_fork_graph.critical_path_weight() / platform.fmax
    return BiCritProblem(mapping=mapping, platform=platform, deadline=deadline)


@pytest.fixture
def tricrit_chain_problem(small_chain_graph):
    reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4)
    platform = Platform(1, ContinuousSpeeds(0.1, 1.0), reliability_model=reliability)
    mapping = Mapping.single_processor(small_chain_graph)
    deadline = 2.5 * small_chain_graph.total_weight() / platform.fmax
    return TriCritProblem(mapping=mapping, platform=platform, deadline=deadline)


@pytest.fixture
def tricrit_fork_problem(small_fork_graph):
    reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4)
    platform = Platform(4, ContinuousSpeeds(0.1, 1.0), reliability_model=reliability)
    mapping = Mapping.one_task_per_processor(small_fork_graph)
    deadline = 2.5 * small_fork_graph.critical_path_weight() / platform.fmax
    return TriCritProblem(mapping=mapping, platform=platform, deadline=deadline)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
