"""Tests of the fault-tolerant distributed campaign coordinator.

Three layers, increasingly end-to-end:

* unit tests of the building blocks (retry policy, work queue, worker
  address parsing, duplicate-completion idempotence);
* chaos tests driving a real in-process :class:`~repro.api.server.ApiServer`
  through the :class:`chaos.ChaosProxy` fault injector (5xx bursts, garbage
  replies, connection kills, stalls that trip the lease timeout);
* a multi-process integration test that SIGKILLs a spawned worker
  mid-sweep and checks the surviving records byte-for-byte against a
  serial run, then resumes from the cache.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from chaos import ChaosProxy
from repro.campaign import ResultCache, run_campaign
from repro.campaign.cache import instance_key
from repro.campaign.distributed import (
    RetryPolicy,
    WorkerClient,
    WorkerError,
    _Coordinator,
    _Task,
    _WorkQueue,
    parse_workers,
    run_distributed_campaign,
    spawn_local_workers,
    stop_workers,
)
from repro.campaign.registry import get_scenario

SCENARIO = "e1-fork-closed-form"

#: Tight timings so failure paths converge in milliseconds, and a high
#: eviction threshold so chaos-injected faults exercise retry-on-the-same
#: -worker rather than instant eviction (eviction has its own tests).
FAST = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05,
                   jitter=0.0, request_timeout=30.0, probe_timeout=1.0,
                   probe_interval=0.05, evict_after=10)


def instances(n=4):
    spec = get_scenario(SCENARIO)
    return [spec.instance({"sizes": (k,)}, smoke=True)
            for k in range(2, 2 + n)]


def result_blobs(outcome):
    return [json.dumps(r.record["result"]).encode() for r in outcome.results]


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture
def worker_server():
    import repro.api.server as server_mod

    srv = server_mod.make_server(port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def address_of(server) -> str:
    host, port = server.server_address[:2]
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_exponential_growth_with_cap(self):
        import random

        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=1.0,
                             jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay_for(attempt, rng) for attempt in (1, 2, 3, 4, 5)]
        assert delays[:4] == pytest.approx([0.1, 0.2, 0.4, 0.8])
        assert delays[4] == pytest.approx(1.0)          # capped
        assert policy.delay_for(20, rng) == pytest.approx(1.0)

    def test_jitter_bounds(self):
        import random

        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=10.0,
                             jitter=0.5)
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.delay_for(2, rng)
            assert 0.2 <= delay <= 0.3    # raw * [1, 1 + jitter]


class TestParseWorkers:
    def test_parses_comma_separated_addresses(self):
        assert parse_workers("a:1, b:2 ,c:3,") == ["a:1", "b:2", "c:3"]

    @pytest.mark.parametrize("bad", ["", ",,", "noport", ":8080", "h:px",
                                     "ok:1,broken"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_workers(bad)


class TestWorkQueue:
    def _task(self, seq, index=0):
        return _Task(not_before=0.0, seq=seq, index=index, instance=None,
                     key=f"k{seq}")

    def test_fifo_for_ready_tasks(self):
        queue = _WorkQueue()
        for seq in range(3):
            queue.put(self._task(seq))
        assert [queue.get().seq for _ in range(3)] == [0, 1, 2]

    def test_backoff_delay_holds_a_task_back(self):
        queue = _WorkQueue()
        queue.put(self._task(0), delay=0.15)
        queue.put(self._task(1))                  # ready now
        assert queue.get().seq == 1
        started = time.monotonic()
        assert queue.get().seq == 0
        assert time.monotonic() - started >= 0.10

    def test_pop_nowait_ignores_delays_and_close_unblocks(self):
        queue = _WorkQueue()
        queue.put(self._task(0), delay=60.0)
        assert queue.pop_nowait().seq == 0        # degradation path
        assert queue.pop_nowait() is None
        queue.close()
        assert queue.get() is None                 # shutdown signal


class TestDuplicateCompletion:
    def test_second_completion_is_ignored(self, tmp_path):
        spec = get_scenario(SCENARIO)
        instance = spec.instance({}, smoke=True)
        key = instance_key(SCENARIO, instance.params,
                           cache_version=spec.cache_version)
        coordinator = _Coordinator(
            workers=[], cache=ResultCache(tmp_path / "cache"),
            policy=FAST, use_cache=True, refresh=False, share_cache=False,
            in_process_fallback=True, max_failures=None, total=1,
            emit=lambda line: None)
        task = _Task(not_before=0.0, seq=0, index=0, instance=instance,
                     key=key, attempts=1)
        coordinator.add_pending([task])
        record = {"key": key, "result": {"ok": True}}
        assert coordinator.complete_success(task, record, 0.1, None) is True
        # At-least-once execution can complete the same lease twice; the
        # second write must be a counted no-op, not a double record.
        assert coordinator.complete_success(task, record, 0.2, None) is False
        assert coordinator.duplicate_completions == 1
        assert coordinator._remaining == 0
        assert coordinator.results[0].elapsed_seconds == 0.1


# ----------------------------------------------------------------------
# zero workers and dead fleets
# ----------------------------------------------------------------------
class TestZeroWorkers:
    def test_matches_serial_runner_byte_for_byte(self, tmp_path):
        grid = instances()
        serial = run_campaign(grid, jobs=1,
                              cache=ResultCache(tmp_path / "serial"))
        dist = run_distributed_campaign(grid, workers=[], policy=FAST,
                                        cache=ResultCache(tmp_path / "dist"))
        assert dist.mode == "in-process" and not dist.degraded
        assert dist.errors == 0
        assert result_blobs(dist) == result_blobs(serial)
        assert [r.key for r in dist.results] == [r.key for r in serial.results]

    def test_second_run_resumes_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = instances()
        first = run_distributed_campaign(grid, workers=[], policy=FAST,
                                         cache=cache)
        assert first.hits == 0
        again = run_distributed_campaign(grid, workers=[], policy=FAST,
                                         cache=cache)
        assert again.hits == len(grid)
        assert all(r.cached for r in again.results)


class TestDeadFleet:
    def test_all_workers_dead_degrades_and_completes(self, tmp_path):
        dead = [f"127.0.0.1:{free_port()}", f"127.0.0.1:{free_port()}"]
        outcome = run_distributed_campaign(
            instances(), workers=dead, policy=FAST,
            cache=ResultCache(tmp_path / "cache"), share_cache=False)
        assert outcome.errors == 0
        assert outcome.degraded is True
        assert outcome.evictions == 2
        assert all(r.ok for r in outcome.results)
        # Eviction telemetry survives into the worker stats.
        assert all(not stats["healthy"] for stats in outcome.worker_stats)

    def test_no_fallback_fails_remaining_instead_of_hanging(self, tmp_path):
        dead = [f"127.0.0.1:{free_port()}"]
        outcome = run_distributed_campaign(
            instances(2), workers=dead, policy=FAST,
            cache=ResultCache(tmp_path / "cache"), share_cache=False,
            in_process_fallback=False)
        assert outcome.errors == 2 and not outcome.degraded
        for result in outcome.results:
            assert result.failure["error_type"] in ("AllWorkersLost",
                                                    "WorkerError.connect")


class TestAbortThreshold:
    def test_max_failures_aborts_and_skips(self, tmp_path, monkeypatch):
        import repro.campaign.distributed as dist_mod

        def boom(scenario, params):
            raise RuntimeError("injected execution failure")

        monkeypatch.setattr(dist_mod, "_execute", boom)
        outcome = run_distributed_campaign(
            instances(4), workers=[], policy=FAST, max_failures=0,
            cache=ResultCache(tmp_path / "cache"))
        assert outcome.aborted is True
        assert outcome.errors == 1
        assert outcome.skipped == 3
        failure = outcome.failures[0].failure
        assert failure["error_type"] == "RuntimeError"
        assert "injected execution failure" in failure["message"]
        assert "ABORTED" in outcome.summary()


# ----------------------------------------------------------------------
# chaos: a real server behind the fault-injecting proxy
# ----------------------------------------------------------------------
class TestChaos:
    def run_through_proxy(self, worker_server, tmp_path, faults,
                          policy=FAST, count=3):
        host, port = worker_server.server_address[:2]
        with ChaosProxy(host, port) as proxy:
            for mode, kwargs in faults:
                proxy.fail_next(mode, **kwargs)
            outcome = run_distributed_campaign(
                instances(count), workers=[proxy.address], policy=policy,
                cache=ResultCache(tmp_path / "cache"))
            return outcome, proxy.injected.copy()

    def test_5xx_burst_is_retried_to_success(self, worker_server, tmp_path):
        outcome, injected = self.run_through_proxy(
            worker_server, tmp_path, [("error", {"count": 2})])
        assert outcome.errors == 0
        assert outcome.retries >= 2
        assert injected["error"] == 2

    def test_garbage_reply_is_retried(self, worker_server, tmp_path):
        outcome, injected = self.run_through_proxy(
            worker_server, tmp_path, [("garbage", {"count": 1})])
        assert outcome.errors == 0
        assert outcome.retries >= 1
        assert injected["garbage"] == 1

    def test_connection_kill_mid_request_is_retried(self, worker_server,
                                                    tmp_path):
        outcome, injected = self.run_through_proxy(
            worker_server, tmp_path, [("kill", {"count": 1})])
        assert outcome.errors == 0
        assert outcome.retries >= 1
        assert injected["kill"] == 1

    def test_stalled_worker_trips_the_lease_timeout(self, worker_server,
                                                    tmp_path):
        quick = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05,
                            jitter=0.0, request_timeout=0.4,
                            probe_timeout=1.0, probe_interval=0.05,
                            evict_after=10)
        started = time.monotonic()
        outcome, injected = self.run_through_proxy(
            worker_server, tmp_path,
            [("delay", {"count": 1, "delay": 30.0})], policy=quick, count=2)
        assert outcome.errors == 0
        assert outcome.retries >= 1
        assert injected["delay"] == 1
        # The lease expired and the task was re-run; we never waited out
        # the full 30 s stall.
        assert time.monotonic() - started < 10.0

    def test_repeated_failures_exhaust_retries_permanently(self,
                                                           worker_server,
                                                           tmp_path):
        outcome, injected = self.run_through_proxy(
            worker_server, tmp_path, [("error", {"count": 50})], count=1)
        assert outcome.errors == 1
        failure = outcome.failures[0].failure
        assert failure["attempts"] == FAST.max_attempts
        assert "retries exhausted" in failure["message"]

    def test_results_after_chaos_match_serial(self, worker_server, tmp_path):
        grid = instances()
        serial = run_campaign(grid, jobs=1,
                              cache=ResultCache(tmp_path / "serial"))
        outcome, _ = self.run_through_proxy(
            worker_server, tmp_path,
            [("error", {"count": 1}), ("kill", {"count": 1}),
             ("garbage", {"count": 1})], count=len(grid))
        assert outcome.errors == 0
        assert result_blobs(outcome) == result_blobs(serial)


# ----------------------------------------------------------------------
# resume and worker offload accounting
# ----------------------------------------------------------------------
class TestResume:
    def test_relaunched_coordinator_skips_completed_instances(
            self, worker_server, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = instances()
        first_client = WorkerClient(*worker_server.server_address[:2])
        first = run_distributed_campaign(grid, workers=[first_client],
                                         policy=FAST, cache=cache)
        assert first.errors == 0 and first.hits == 0
        assert first_client.requests == len(grid)
        # A re-launched coordinator (fresh client, same cache) must peel
        # every completed instance off as a cache hit without touching the
        # worker at all.
        second_client = WorkerClient(*worker_server.server_address[:2])
        second = run_distributed_campaign(grid, workers=[second_client],
                                          policy=FAST, cache=cache)
        assert second.hits == len(grid)
        assert second_client.requests == 0
        assert result_blobs(second) == result_blobs(first)

    def test_partial_cache_only_schedules_the_remainder(
            self, worker_server, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        grid = instances(6)
        run_distributed_campaign(grid[:3], workers=[], policy=FAST,
                                 cache=cache)
        client = WorkerClient(*worker_server.server_address[:2])
        outcome = run_distributed_campaign(grid, workers=[client],
                                           policy=FAST, cache=cache)
        assert outcome.hits == 3
        assert client.requests == 3


# ----------------------------------------------------------------------
# multi-process integration: SIGKILL a worker mid-sweep
# ----------------------------------------------------------------------
class TestWorkerLossIntegration:
    def test_sweep_survives_a_sigkilled_worker(self, tmp_path):
        grid = instances(8)
        serial = run_campaign(grid, jobs=1,
                              cache=ResultCache(tmp_path / "serial"))
        assert serial.errors == 0

        workers = spawn_local_workers(2)
        by_address = {worker.address: worker for worker in workers}
        killed = []

        def kill_first_responder(line):
            # SIGKILL the worker that served the first completed instance,
            # from inside the completion callback: its remaining leases die
            # mid-flight and must be requeued onto the survivor.
            if killed or " on 127.0.0.1:" not in line:
                return
            address = line.rsplit(" on ", 1)[1].split(",")[0].strip()
            worker = by_address.get(address)
            if worker is not None:
                worker.kill()
                killed.append(address)

        try:
            outcome = run_distributed_campaign(
                grid, workers=[worker.address for worker in workers],
                policy=FAST, cache=ResultCache(tmp_path / "dist"),
                progress=kill_first_responder)
        finally:
            stop_workers(workers)

        assert killed, "no completion line ever named a worker"
        assert outcome.errors == 0
        assert outcome.evictions >= 1
        # The acceptance bar: records identical to the serial run, byte
        # for byte, despite losing a worker mid-flight.
        assert result_blobs(outcome) == result_blobs(serial)
        assert [r.key for r in outcome.results] == \
            [r.key for r in serial.results]

        # And a re-launched coordinator resumes: everything is already in
        # the content-addressed cache, no worker needed.
        resumed = run_distributed_campaign(
            grid, workers=[], policy=FAST,
            cache=ResultCache(tmp_path / "dist"))
        assert resumed.hits == len(grid)
        assert result_blobs(resumed) == result_blobs(serial)
