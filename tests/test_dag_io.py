"""Tests of task-graph serialisation (JSON and DOT)."""

from __future__ import annotations

import json

import pytest

from repro.dag import generators
from repro.dag.io import (
    load_json,
    save_json,
    taskgraph_from_dict,
    taskgraph_to_dict,
    to_dot,
)


class TestJsonRoundtrip:
    def test_dict_roundtrip(self):
        g = generators.fork_join(1.0, [2.0, 3.0], 4.0)
        data = taskgraph_to_dict(g)
        rebuilt = taskgraph_from_dict(data)
        assert rebuilt == g

    def test_dict_is_json_serialisable(self):
        g = generators.random_layered_dag(3, 2, seed=1)
        text = json.dumps(taskgraph_to_dict(g))
        rebuilt = taskgraph_from_dict(json.loads(text))
        assert rebuilt == g

    def test_file_roundtrip(self, tmp_path):
        g = generators.random_series_parallel(6, seed=4)
        path = tmp_path / "graph.json"
        save_json(g, path)
        assert load_json(path) == g

    def test_unsupported_version_rejected(self):
        g = generators.chain([1.0])
        data = taskgraph_to_dict(g)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            taskgraph_from_dict(data)

    def test_edges_are_sorted_for_determinism(self):
        g = generators.fork(1.0, [1.0, 1.0, 1.0])
        d1 = taskgraph_to_dict(g)
        d2 = taskgraph_to_dict(g.copy())
        assert d1 == d2


class TestDot:
    def test_dot_contains_every_task_and_edge(self):
        g = generators.fork(1.0, [2.0, 3.0])
        dot = to_dot(g, name="fork")
        assert dot.startswith("digraph fork {")
        assert dot.rstrip().endswith("}")
        for t in g.tasks():
            assert f'"{t}"' in dot
        for u, v in g.edges():
            assert f'"{u}" -> "{v}";' in dot

    def test_dot_includes_weights(self):
        g = generators.chain([1.5, 2.0])
        dot = to_dot(g)
        assert "w=1.5" in dot
        assert "w=2" in dot
