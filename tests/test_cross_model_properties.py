"""Cross-cutting property-based tests of the paper's structural results.

These hypothesis tests encode the orderings and invariants that tie the
library together, on randomly generated instances:

* the fork formula equals the series-parallel recursion on forks;
* more available modes can only help VDD-HOPPING;
* the VDD-HOPPING optimum is monotone in the deadline;
* re-execution never hurts the optimal TRI-CRIT chain energy when slack grows;
* every solver's schedule passes the independent feasibility checker.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous.closed_form import fork_energy, series_parallel_bicrit
from repro.continuous.tricrit_chain import solve_tricrit_chain_greedy
from repro.core.problems import BiCritProblem, TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.discrete.vdd_lp import solve_bicrit_vdd_lp
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform

weights_strategy = st.lists(st.floats(min_value=0.5, max_value=8.0),
                            min_size=2, max_size=6)


class TestClosedFormConsistency:
    @given(st.floats(min_value=0.5, max_value=8.0), weights_strategy,
           st.floats(min_value=1.0, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_fork_formula_equals_sp_recursion(self, w0, children, deadline):
        graph = generators.fork(w0, children)
        sp = series_parallel_bicrit(graph, deadline)
        assert sp.energy == pytest.approx(fork_energy(w0, children, deadline),
                                          rel=1e-9)

    @given(weights_strategy, st.floats(min_value=1.5, max_value=4.0))
    @settings(max_examples=40, deadline=None)
    def test_serialising_a_fork_costs_at_least_as_much(self, children, slack):
        """Running the children sequentially (chain) can never use less energy
        than running them in parallel (fork) under the same deadline."""
        w0 = 1.0
        deadline = slack * (w0 + max(children))
        parallel_energy = fork_energy(w0, children, deadline)
        serial_energy = (w0 + sum(children)) ** 3 / deadline ** 2
        assert serial_energy >= parallel_energy - 1e-9


class TestVddMonotonicity:
    def _chain_problem(self, weights, slack, modes):
        graph = generators.chain(list(weights))
        platform = Platform(1, VddHoppingSpeeds(modes))
        deadline = slack * graph.total_weight() / platform.fmax
        return BiCritProblem(Mapping.single_processor(graph), platform, deadline)

    @given(weights_strategy, st.floats(min_value=1.1, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_more_modes_never_hurt(self, weights, slack):
        coarse = self._chain_problem(weights, slack, (0.2, 0.6, 1.0))
        fine = self._chain_problem(weights, slack, (0.2, 0.4, 0.6, 0.8, 1.0))
        e_coarse = solve_bicrit_vdd_lp(coarse).energy
        e_fine = solve_bicrit_vdd_lp(fine).energy
        assert e_fine <= e_coarse * (1 + 1e-9)

    @given(weights_strategy, st.floats(min_value=1.1, max_value=2.0),
           st.floats(min_value=1.05, max_value=1.8))
    @settings(max_examples=20, deadline=None)
    def test_longer_deadline_never_hurts(self, weights, slack, stretch):
        tight = self._chain_problem(weights, slack, (0.2, 0.4, 0.6, 0.8, 1.0))
        loose = BiCritProblem(tight.mapping, tight.platform, tight.deadline * stretch)
        assert solve_bicrit_vdd_lp(loose).energy <= solve_bicrit_vdd_lp(tight).energy * (1 + 1e-9)

    @given(weights_strategy, st.floats(min_value=1.1, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_vdd_schedule_passes_independent_checker(self, weights, slack):
        problem = self._chain_problem(weights, slack, (0.2, 0.4, 0.6, 0.8, 1.0))
        result = solve_bicrit_vdd_lp(problem)
        schedule = result.require_schedule()
        assert problem.evaluate(schedule).feasible


class TestTriCritChainProperties:
    def _problem(self, weights, slack):
        graph = generators.chain(list(weights))
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4)
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0), reliability_model=model)
        deadline = slack * graph.total_weight()
        return TriCritProblem(Mapping.single_processor(graph), platform, deadline)

    @given(weights_strategy, st.floats(min_value=1.05, max_value=2.0),
           st.floats(min_value=1.1, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_greedy_energy_monotone_in_deadline(self, weights, slack, stretch):
        tight = self._problem(weights, slack)
        loose = TriCritProblem(tight.mapping, tight.platform, tight.deadline * stretch)
        e_tight = solve_tricrit_chain_greedy(tight).energy
        e_loose = solve_tricrit_chain_greedy(loose).energy
        assert e_loose <= e_tight * (1 + 1e-9)

    @given(weights_strategy, st.floats(min_value=1.2, max_value=3.5))
    @settings(max_examples=15, deadline=None)
    def test_greedy_schedule_is_always_feasible_and_reliable(self, weights, slack):
        problem = self._problem(weights, slack)
        result = solve_tricrit_chain_greedy(problem)
        assert result.feasible
        assert problem.evaluate(result.require_schedule()).feasible

    @given(weights_strategy)
    @settings(max_examples=15, deadline=None)
    def test_energy_never_below_continuous_bicrit_bound(self, weights):
        """Reliability can only cost energy: the TRI-CRIT optimum is at least
        the unconstrained chain bound (sum w)^3 / D^2."""
        problem = self._problem(weights, 2.0)
        result = solve_tricrit_chain_greedy(problem)
        bound = sum(weights) ** 3 / problem.deadline ** 2
        assert result.energy >= bound - 1e-9
