"""Tests of the v1 facade: types, error codes, and Engine semantics.

Covers the wire contract (every request/response type JSON-round-trips),
the stable error-code mapping (each documented failure path produces its
code), and the engine's hot-path state (problem interning, LRU result
cache with hit flagging, batched submit, metrics).
"""

from __future__ import annotations

import json
import math

import pytest

import repro.api as api
from repro.api.errors import (
    ERROR_CODES,
    HTTP_STATUS,
    INADMISSIBLE_SOLVER,
    INTERNAL_ERROR,
    INVALID_PROBLEM,
    INVALID_REQUEST,
    NO_ADMISSIBLE_SOLVER,
    SIZE_LIMIT,
    UNKNOWN_SCENARIO,
    UNKNOWN_SOLVER,
    ApiError,
    ErrorResponse,
    error_from_exception,
)
from repro.core import DiscreteSpeeds, TriCritProblem
from repro.core.problem_io import problem_to_dict
from repro.core.reliability import ReliabilityModel
from repro.platform import Mapping, Platform
from repro.solvers import solve as registry_solve


@pytest.fixture
def engine() -> api.Engine:
    return api.Engine()


@pytest.fixture
def chain_payload(small_chain_problem) -> dict:
    return problem_to_dict(small_chain_problem)


# ----------------------------------------------------------------------
# wire types: JSON round trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def _roundtrip(self, obj):
        wire = json.loads(json.dumps(obj.to_dict()))
        return type(obj).from_dict(wire)

    def test_solve_request(self, chain_payload):
        req = api.SolveRequest(problem=chain_payload, solver="auto",
                               options={"method": "kkt"})
        assert self._roundtrip(req) == req

    def test_solve_batch_request(self, chain_payload):
        req = api.SolveBatchRequest(problems=[chain_payload, chain_payload],
                                    solver="bicrit-closed-form")
        assert self._roundtrip(req) == req

    def test_simulate_request(self, chain_payload):
        req = api.SimulateRequest(problem=chain_payload, trials=64, seed=7,
                                  engine="scalar")
        assert self._roundtrip(req) == req

    def test_campaign_request(self):
        req = api.CampaignRequest(scenario="e1-fork-closed-form",
                                  params={"sizes": [2, 4]}, smoke=True,
                                  cache_dir="/tmp/x")
        assert self._roundtrip(req) == req

    def test_solve_response(self):
        resp = api.SolveResponse(
            energy=1.25, status="optimal", solver="bicrit-closed-form",
            feasible=True, makespan=2.0, speeds={"a": [0.5], "b": [0.5, 0.7]},
            num_reexecuted=1, dispatch={"solver": "bicrit-closed-form"},
            cached=True, elapsed_ms=0.0)
        assert self._roundtrip(resp) == resp

    def test_solve_batch_response(self):
        inner = api.SolveResponse(
            energy=1.0, status="optimal", solver="s", feasible=True,
            makespan=1.0, speeds={}, num_reexecuted=0, dispatch={})
        resp = api.SolveBatchResponse(results=[inner, inner])
        back = self._roundtrip(resp)
        assert back == resp
        assert back.cached_count == 0

    def test_simulate_response(self):
        inner = api.SolveResponse(
            energy=1.0, status="optimal", solver="s", feasible=True,
            makespan=1.0, speeds={}, num_reexecuted=0, dispatch={})
        resp = api.SimulateResponse(
            solve=inner, trials=100, success_rate=0.99, success_stderr=0.01,
            analytic_reliability=0.985, mean_energy=1.0, mean_makespan=1.0,
            max_makespan=1.2, mean_attempts=4.0, engine="batch")
        assert self._roundtrip(resp) == resp

    def test_campaign_response(self):
        resp = api.CampaignResponse(
            scenario="e1-fork-closed-form", key="abc123", cached=True,
            elapsed_seconds=0.5, result=[{"col": 1.0}], params={"seed": 59})
        assert self._roundtrip(resp) == resp

    def test_error_response(self):
        resp = ErrorResponse(code=SIZE_LIMIT, message="too big",
                             detail={"tasks": 600})
        wire = json.loads(json.dumps(resp.to_dict()))
        assert ErrorResponse.from_dict(wire) == resp
        assert "error" in resp.to_dict()     # wire envelope

    def test_every_code_has_a_status(self):
        for code in ERROR_CODES:
            assert ErrorResponse(code=code, message="x").http_status == \
                HTTP_STATUS[code]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            ErrorResponse(code="nope", message="x")


# ----------------------------------------------------------------------
# request validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_missing_problem(self):
        with pytest.raises(ApiError) as info:
            api.SolveRequest.from_dict({"solver": "auto"})
        assert info.value.code == INVALID_REQUEST

    def test_unknown_field(self, chain_payload):
        with pytest.raises(ApiError, match="unknown field"):
            api.SolveRequest.from_dict({"problem": chain_payload, "prio": 1})

    def test_non_object_body(self):
        with pytest.raises(ApiError) as info:
            api.SolveRequest.from_dict([1, 2])
        assert info.value.code == INVALID_REQUEST

    def test_problems_must_be_array(self, chain_payload):
        with pytest.raises(ApiError, match="JSON array"):
            api.SolveBatchRequest.from_dict({"problems": chain_payload})

    def test_trials_minimum(self, chain_payload):
        with pytest.raises(ApiError, match="trials"):
            api.SimulateRequest.from_dict({"problem": chain_payload,
                                           "trials": 0})

    def test_bad_engine_name(self, chain_payload):
        with pytest.raises(ApiError, match="engine"):
            api.SimulateRequest.from_dict({"problem": chain_payload,
                                           "engine": "warp"})

    def test_bool_typed_field(self):
        with pytest.raises(ApiError, match="smoke"):
            api.CampaignRequest.from_dict({"scenario": "e1", "smoke": "yes"})


# ----------------------------------------------------------------------
# engine: caching, interning, batch
# ----------------------------------------------------------------------
class TestEngineSolve:
    def test_matches_registry_solve(self, engine, small_chain_problem,
                                    chain_payload):
        direct = registry_solve(small_chain_problem)
        resp = engine.solve(api.SolveRequest(problem=chain_payload))
        assert resp.status == direct.status
        assert resp.energy == pytest.approx(direct.energy, rel=1e-12)
        assert resp.solver == direct.solver
        assert resp.makespan == pytest.approx(direct.schedule.makespan())
        assert resp.dispatch["solver"] == direct.metadata["dispatch"]["solver"]
        assert not resp.cached

    def test_second_identical_solve_is_cached(self, engine, chain_payload):
        first = engine.solve(api.SolveRequest(problem=chain_payload))
        second = engine.solve(api.SolveRequest(problem=chain_payload))
        assert not first.cached
        assert second.cached
        assert second.elapsed_ms == 0.0
        assert second.energy == first.energy
        metrics = engine.metrics()
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1
        assert metrics["cache"]["result_entries"] == 1

    def test_object_and_dict_forms_share_cache(self, engine,
                                               small_chain_problem,
                                               chain_payload):
        engine.solve(api.SolveRequest(problem=small_chain_problem))
        resp = engine.solve(api.SolveRequest(problem=chain_payload))
        assert resp.cached

    def test_problem_pool_interns_payloads(self, engine, chain_payload):
        a = engine.resolve_problem(json.loads(json.dumps(chain_payload)))
        b = engine.resolve_problem(json.loads(json.dumps(chain_payload)))
        assert a is b

    def test_named_solver_and_options_key_the_cache(self, engine,
                                                    chain_payload):
        auto = engine.solve(api.SolveRequest(problem=chain_payload))
        registry_name = auto.dispatch["solver"]   # e.g. "bicrit-closed-form"
        named = engine.solve(api.SolveRequest(problem=chain_payload,
                                              solver=registry_name))
        assert not named.cached     # different request key than "auto"
        repeat = engine.solve(api.SolveRequest(problem=chain_payload,
                                               solver=registry_name))
        assert repeat.cached

    def test_speeds_schema(self, engine, chain_payload):
        resp = engine.solve(api.SolveRequest(problem=chain_payload))
        assert resp.speeds
        for task, speeds in resp.speeds.items():
            assert isinstance(task, str)
            assert all(isinstance(s, float) and s > 0 for s in speeds)

    def test_tricrit_response_reports_reexecutions(self, engine,
                                                   tricrit_chain_problem):
        resp = engine.solve(api.SolveRequest(
            problem=problem_to_dict(tricrit_chain_problem)))
        assert resp.feasible
        assert resp.num_reexecuted == sum(
            1 for s in resp.speeds.values() if len(s) == 2)


class TestEngineBatch:
    def test_batch_matches_scalar(self, engine, small_chain_problem,
                                  small_fork_problem):
        payloads = [problem_to_dict(small_chain_problem),
                    problem_to_dict(small_fork_problem)]
        request = api.SolveBatchRequest(problems=payloads)
        batch = engine.solve_batch(request)
        assert len(batch.results) == 2
        for payload, got in zip(payloads, batch.results):
            direct = registry_solve(engine.resolve_problem(payload))
            assert got.energy == pytest.approx(direct.energy, rel=1e-9)
            assert got.solver == direct.solver

    def test_batch_peels_cache_hits(self, engine, small_chain_problem,
                                    small_fork_problem):
        chain = problem_to_dict(small_chain_problem)
        fork = problem_to_dict(small_fork_problem)
        engine.solve(api.SolveRequest(problem=chain))
        batch = engine.solve_batch(api.SolveBatchRequest(problems=[chain, fork]))
        assert [r.cached for r in batch.results] == [True, False]
        assert batch.cached_count == 1
        # Everything is warm now.
        again = engine.solve_batch(api.SolveBatchRequest(problems=[chain, fork]))
        assert again.cached_count == 2

    def test_submit_batch_preserves_order(self, engine, small_chain_problem,
                                          small_fork_problem):
        pairs = engine.submit_batch([small_fork_problem, small_chain_problem])
        assert pairs[0][0].energy == pytest.approx(
            registry_solve(small_fork_problem).energy, rel=1e-9)
        assert pairs[1][0].energy == pytest.approx(
            registry_solve(small_chain_problem).energy, rel=1e-9)


class TestEngineErrors:
    def test_unknown_solver(self, engine, chain_payload):
        with pytest.raises(ApiError) as info:
            engine.solve(api.SolveRequest(problem=chain_payload,
                                          solver="definitely-not-registered"))
        assert info.value.code == UNKNOWN_SOLVER

    def test_inadmissible_solver(self, engine, tricrit_fork_problem):
        # A chain-only solver named on a fork instance.
        with pytest.raises(ApiError) as info:
            engine.solve(api.SolveRequest(
                problem=problem_to_dict(tricrit_fork_problem),
                solver="tricrit-chain-greedy"))
        assert info.value.code == INADMISSIBLE_SOLVER

    def test_no_admissible_solver(self, engine, small_chain_graph):
        # TRI-CRIT on a plain DISCRETE platform: no registered solver class.
        reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4)
        platform = Platform(1, DiscreteSpeeds([0.2, 0.6, 1.0]),
                            reliability_model=reliability)
        problem = TriCritProblem(
            mapping=Mapping.single_processor(small_chain_graph),
            platform=platform,
            deadline=3.0 * small_chain_graph.total_weight())
        with pytest.raises(ApiError) as info:
            engine.solve(api.SolveRequest(problem=problem_to_dict(problem)))
        assert info.value.code == NO_ADMISSIBLE_SOLVER

    def test_invalid_problem_payload(self, engine):
        with pytest.raises(ApiError) as info:
            engine.solve(api.SolveRequest(problem={"kind": "bicrit"}))
        assert info.value.code == INVALID_PROBLEM

    def test_instance_size_limit(self, small_chain_problem):
        tight = api.Engine(max_tasks=2)
        with pytest.raises(ApiError) as info:
            tight.solve(api.SolveRequest(
                problem=problem_to_dict(small_chain_problem)))
        assert info.value.code == SIZE_LIMIT
        assert info.value.response.detail["max_tasks"] == 2

    def test_batch_size_limit(self, chain_payload):
        tight = api.Engine(max_batch=1)
        with pytest.raises(ApiError) as info:
            tight.solve_batch(api.SolveBatchRequest(
                problems=[chain_payload, chain_payload]))
        assert info.value.code == SIZE_LIMIT

    def test_object_layer_propagates_raw_library_exceptions(self, engine,
                                                            small_chain_graph):
        # submit()/submit_batch() are the in-process layer: library callers
        # keep catching the library's own exception types; only the wire
        # layer translates them into ApiError codes.
        from repro.solvers import NoAdmissibleSolverError

        reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4)
        platform = Platform(1, DiscreteSpeeds([0.2, 0.6, 1.0]),
                            reliability_model=reliability)
        problem = TriCritProblem(
            mapping=Mapping.single_processor(small_chain_graph),
            platform=platform,
            deadline=3.0 * small_chain_graph.total_weight())
        with pytest.raises(NoAdmissibleSolverError):
            engine.submit(problem)

    def test_default_engine_is_uncapped(self):
        api.reset_default_engine()
        try:
            shared = api.default_engine()
            assert shared.max_tasks is None
            assert shared.max_batch is None
        finally:
            api.reset_default_engine()

    def test_error_from_exception_passthrough_and_fallback(self):
        err = ApiError(SIZE_LIMIT, "x")
        assert error_from_exception(err) is err
        mapped = error_from_exception(RuntimeError("boom"))
        assert mapped.code == INTERNAL_ERROR
        assert mapped.response.detail["exception"] == "RuntimeError"


# ----------------------------------------------------------------------
# simulate and campaign endpoints
# ----------------------------------------------------------------------
class TestSimulate:
    def test_simulate_reports_consistent_statistics(self, engine,
                                                    tricrit_chain_problem):
        resp = engine.simulate(api.SimulateRequest(
            problem=problem_to_dict(tricrit_chain_problem), trials=300,
            seed=3))
        assert resp.trials == 300
        assert 0.0 <= resp.success_rate <= 1.0
        assert 0.0 < resp.analytic_reliability <= 1.0
        assert resp.mean_energy > 0
        assert resp.solve.feasible
        # The solve that backed the simulation is cached for future requests.
        again = engine.simulate(api.SimulateRequest(
            problem=problem_to_dict(tricrit_chain_problem), trials=50, seed=3))
        assert again.solve.cached

    def test_simulate_is_seed_deterministic(self, engine, chain_payload):
        a = engine.simulate(api.SimulateRequest(problem=chain_payload,
                                                trials=200, seed=11))
        b = engine.simulate(api.SimulateRequest(problem=chain_payload,
                                                trials=200, seed=11))
        assert a.success_rate == b.success_rate
        assert a.mean_energy == b.mean_energy


class TestCampaign:
    def test_campaign_runs_and_caches(self, engine, tmp_path):
        request = api.CampaignRequest(scenario="e1-fork-closed-form",
                                      smoke=True,
                                      cache_dir=str(tmp_path / "cache"))
        first = engine.campaign(request)
        assert first.scenario == "e1-fork-closed-form"
        assert not first.cached
        assert first.result      # rows from the experiment driver
        second = engine.campaign(request)
        assert second.cached
        assert second.result == first.result

    def test_unknown_scenario(self, engine, tmp_path):
        with pytest.raises(ApiError) as info:
            engine.campaign(api.CampaignRequest(
                scenario="e99-nope", cache_dir=str(tmp_path)))
        assert info.value.code == UNKNOWN_SCENARIO

    def test_unknown_param(self, engine, tmp_path):
        with pytest.raises(ApiError) as info:
            engine.campaign(api.CampaignRequest(
                scenario="e1-fork-closed-form", params={"warp": 9},
                cache_dir=str(tmp_path)))
        assert info.value.code == INVALID_REQUEST


# ----------------------------------------------------------------------
# shared default engine
# ----------------------------------------------------------------------
class TestDefaultEngine:
    def test_singleton_and_reset(self):
        api.reset_default_engine()
        a = api.default_engine()
        assert api.default_engine() is a
        api.reset_default_engine()
        assert api.default_engine() is not a

    def test_module_level_submit_uses_shared_cache(self, small_fork_problem):
        api.reset_default_engine()
        try:
            _, cached_first = api.submit(small_fork_problem)
            _, cached_second = api.submit(small_fork_problem)
            assert not cached_first
            assert cached_second
        finally:
            api.reset_default_engine()

    def test_content_key_is_memoized_and_stable(self, small_chain_problem):
        key1 = api.problem_content_key(small_chain_problem)
        key2 = api.problem_content_key(small_chain_problem)
        assert key1 == key2
        assert len(key1) == 64
        # A round-tripped copy of the same instance hashes identically.
        from repro.core.problem_io import problem_from_dict

        clone = problem_from_dict(problem_to_dict(small_chain_problem))
        assert api.problem_content_key(clone) == key1


class TestMetrics:
    def test_latency_and_counts(self, engine, chain_payload):
        service = api.Service(engine)
        body = json.dumps({"problem": chain_payload})
        for _ in range(3):
            status, _payload = service.handle("POST", "/v1/solve", body)
            assert status == 200
        status, metrics = service.handle("GET", "/metrics")
        assert status == 200
        assert metrics["requests"]["POST /v1/solve"] == 3
        lat = metrics["latency_ms"]["POST /v1/solve"]
        assert lat["count"] == 3
        assert lat["p50_ms"] <= lat["p99_ms"] or \
            math.isclose(lat["p50_ms"], lat["p99_ms"])
        assert metrics["cache"]["hit_rate"] == pytest.approx(2 / 3)

    def test_unmatched_paths_share_one_metrics_bucket(self, engine):
        service = api.Service(engine)
        for i in range(5):
            status, _ = service.handle("GET", f"/scanner/probe-{i}")
            assert status == 404
        metrics = engine.metrics()
        assert metrics["requests"].get("unmatched") == 5
        assert not any("probe" in route for route in metrics["requests"])
        assert metrics["errors"]["unmatched"] == 5

    def test_cache_bypass_does_not_skew_hit_rate(self, engine,
                                                 small_chain_problem):
        engine.submit(small_chain_problem)               # miss
        engine.submit(small_chain_problem)               # hit
        for _ in range(3):
            engine.submit(small_chain_problem, use_cache=False)
        metrics = engine.metrics()
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1
