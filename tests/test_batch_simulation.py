"""Scalar <-> batch equivalence tests for the vectorized simulation kernel.

The batch engine must be a drop-in replacement for the scalar reference
oracle: same failure probabilities, same re-execution semantics, same timing
model.  Because both engines consume the generator stream in the same order
(one uniform per scheduled execution of a positive-weight task, in augmented
topological order), matched seeds give *identical* results on these
instances; the property tests additionally check agreement against the
analytic model within binomial tolerance so the suite stays robust if the
stream layouts ever diverge.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.reliability import ReliabilityModel
from repro.core.schedule import Execution, Schedule, TaskDecision
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform
from repro.simulation import (
    FaultInjector,
    analytic_schedule_reliability,
    as_generator,
    compile_schedule,
    run_monte_carlo,
    simulate_batch,
    simulate_schedule,
)


def make_platform(p=1, lambda0=5e-2, sensitivity=3.0):
    model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0,
                             sensitivity=sensitivity)
    return Platform(p, ContinuousSpeeds(0.1, 1.0), reliability_model=model)


def make_schedule(kind, *, lambda0=5e-2, speed=0.5, reexecute=(), processors=1):
    """Chain / fork / random-DAG schedules used across the property tests."""
    if kind == "chain":
        graph = generators.chain([2.0, 1.0, 3.0, 0.5])
    elif kind == "fork":
        graph = generators.fork(3.0, [2.0, 5.0, 1.0])
    else:
        graph = generators.random_layered_dag(3, 3, seed=11)
    platform = make_platform(processors, lambda0=lambda0)
    if processors == 1:
        mapping = Mapping.single_processor(graph)
    else:
        mapping = critical_path_mapping(graph, processors, fmax=1.0).mapping
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        if t in reexecute or reexecute == "all":
            decisions[t] = TaskDecision.reexecuted(t, w, speed, speed)
        else:
            decisions[t] = TaskDecision.single(t, w, speed)
    return Schedule(mapping, platform, decisions)


class TestCompiledSchedule:
    def test_arrays_match_scalar_quantities(self):
        schedule = make_schedule("random", reexecute="all", processors=2)
        comp = compile_schedule(schedule)
        injector = FaultInjector(schedule.platform.reliability(), rng=0)
        k = 0
        for t in comp.order:
            decision = schedule.decisions[t]
            for execution in decision.executions:
                assert comp.exec_duration[k] == pytest.approx(execution.duration)
                assert comp.exec_energy[k] == pytest.approx(
                    execution.energy(schedule.platform.energy_model.exponent))
                assert comp.exec_exposure[k] == pytest.approx(injector.exposure(execution))
                k += 1
        assert k == comp.num_executions
        assert comp.worst_case_energy == pytest.approx(schedule.energy())

    def test_topological_predecessor_structure(self):
        schedule = make_schedule("random", processors=3)
        comp = compile_schedule(schedule)
        for i in range(comp.num_tasks):
            assert all(j < i for j in comp.predecessors_of(i))

    def test_compile_is_memoised(self):
        schedule = make_schedule("chain")
        assert compile_schedule(schedule) is compile_schedule(schedule)

    def test_zero_weight_tasks_have_no_executions(self):
        graph = generators.chain([2.0, 0.0, 3.0])
        platform = make_platform()
        mapping = Mapping.single_processor(graph)
        schedule = Schedule.from_speeds(mapping, platform,
                                        {t: 0.5 for t in graph.tasks()})
        comp = compile_schedule(schedule)
        assert comp.num_executions == 2
        assert list(comp.execution_counts) == [1, 0, 1]

    def test_analytic_reliability_matches_legacy_product(self):
        for poisson in (True, False):
            schedule = make_schedule("fork", reexecute=("T1",))
            model = schedule.platform.reliability()
            expected = 1.0
            for t, decision in schedule.decisions.items():
                if schedule.graph.weight(t) <= 0:
                    continue
                failure = 1.0
                for e in decision.executions:
                    exposure = sum(float(model.fault_rate(f)) * d for f, d in e.intervals)
                    failure *= (1.0 - math.exp(-exposure)) if poisson else min(exposure, 1.0)
                expected *= 1.0 - failure
            assert analytic_schedule_reliability(schedule, poisson=poisson) == \
                pytest.approx(expected)


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("kind", ["chain", "fork", "random"])
    @pytest.mark.parametrize("poisson", [True, False])
    def test_summaries_agree_within_binomial_tolerance(self, kind, poisson):
        trials = 2500
        reexec = ("T1", "T2") if kind != "random" else "all"
        processors = 2 if kind == "random" else 1
        scalar = run_monte_carlo(
            make_schedule(kind, reexecute=reexec, processors=processors),
            trials, seed=5, poisson=poisson, engine="scalar")
        batch = run_monte_carlo(
            make_schedule(kind, reexecute=reexec, processors=processors),
            trials, seed=5, poisson=poisson, engine="batch")
        p = scalar.analytic_reliability
        tol = 6.0 * math.sqrt(max(p * (1.0 - p), 1e-12) * 2.0 / trials) + 1e-9
        assert abs(batch.success_rate - scalar.success_rate) <= tol
        assert batch.analytic_reliability == pytest.approx(scalar.analytic_reliability)
        assert batch.mean_energy == pytest.approx(scalar.mean_energy, rel=0.05, abs=1e-9)
        assert batch.mean_makespan == pytest.approx(scalar.mean_makespan, rel=0.05)
        assert batch.mean_attempts == pytest.approx(scalar.mean_attempts, rel=0.05)
        assert batch.within_confidence() and scalar.within_confidence()

    @pytest.mark.parametrize("skip", [True, False])
    def test_matched_seed_exact_equality(self, skip):
        # Both engines draw one uniform per scheduled execution in augmented
        # topological order, so the fault matrices -- and therefore every
        # aggregate -- are bit-identical for a matched seed.
        trials = 400
        for kind in ("chain", "fork"):
            scalar = run_monte_carlo(make_schedule(kind, reexecute="all"),
                                     trials, seed=13, engine="scalar",
                                     skip_second_execution_on_success=skip)
            batch = run_monte_carlo(make_schedule(kind, reexecute="all"),
                                    trials, seed=13, engine="batch",
                                    skip_second_execution_on_success=skip)
            assert batch.success_rate == scalar.success_rate
            assert batch.mean_energy == pytest.approx(scalar.mean_energy, rel=1e-12)
            assert batch.mean_makespan == pytest.approx(scalar.mean_makespan, rel=1e-12)
            assert batch.mean_attempts == scalar.mean_attempts

    def test_fault_free_batch_matches_analytic_schedule(self):
        schedule = make_schedule("random", lambda0=0.0, reexecute="all", processors=2)
        result = simulate_batch(schedule, 50, rng=0,
                                skip_second_execution_on_success=False)
        assert result.successes.all()
        assert result.makespans == pytest.approx(np.full(50, schedule.makespan()))
        assert result.energies == pytest.approx(np.full(50, schedule.energy()))

    def test_fault_free_skip_mode_matches_scalar_run(self):
        schedule = make_schedule("chain", lambda0=0.0, reexecute="all")
        reference = simulate_schedule(schedule)
        result = simulate_batch(schedule, 10, rng=0)
        assert result.makespans == pytest.approx(np.full(10, reference.makespan))
        assert result.energies == pytest.approx(np.full(10, reference.energy))
        assert result.attempts.tolist() == [reference.num_attempts] * 10

    def test_certain_failure(self):
        schedule = make_schedule("chain", lambda0=1e6)
        result = simulate_batch(schedule, 20, rng=0)
        assert not result.successes.any()
        assert result.success_rate == 0.0

    def test_zero_weight_tasks_succeed_and_cost_nothing(self):
        graph = generators.chain([2.0, 0.0, 3.0])
        platform = make_platform(lambda0=0.0)
        schedule = Schedule.from_speeds(Mapping.single_processor(graph), platform,
                                        {t: 0.5 for t in graph.tasks()})
        result = simulate_batch(schedule, 5, rng=0)
        reference = simulate_schedule(schedule)
        assert result.successes.all()
        assert result.attempts.tolist() == [reference.num_attempts] * 5
        assert result.makespans == pytest.approx(np.full(5, reference.makespan))

    def test_multi_interval_executions(self):
        # VDD-hopping style executions with several constant-speed intervals.
        graph = generators.chain([2.0, 1.0])
        platform = make_platform(lambda0=5e-2)
        mapping = Mapping.single_processor(graph)
        decisions = {
            "T0": TaskDecision("T0", (Execution.from_intervals([(0.5, 2.0), (1.0, 1.0)]),)),
            "T1": TaskDecision("T1", (Execution.from_intervals([(0.4, 1.0), (0.6, 1.0)]),
                                      Execution.at_speed(1.0, 1.0))),
        }
        schedule = Schedule(mapping, platform, decisions)
        trials = 3000
        scalar = run_monte_carlo(schedule, trials, seed=3, engine="scalar")
        batch = run_monte_carlo(schedule, trials, seed=3, engine="batch")
        assert batch.success_rate == pytest.approx(scalar.success_rate, abs=0.05)
        assert batch.within_confidence() and scalar.within_confidence()


class TestMonteCarloEngineSwitch:
    def test_unknown_engine_rejected(self):
        schedule = make_schedule("chain")
        with pytest.raises(ValueError, match="unknown engine"):
            run_monte_carlo(schedule, 10, engine="gpu")

    def test_batch_is_default(self):
        schedule = make_schedule("chain", lambda0=0.0)
        summary = run_monte_carlo(schedule, 10)
        assert summary.success_rate == 1.0

    def test_seed_accepts_generator(self):
        schedule = make_schedule("chain")
        a = run_monte_carlo(schedule, 200, seed=np.random.default_rng(42))
        b = run_monte_carlo(schedule, 200, seed=42)
        assert a.success_rate == b.success_rate

    def test_batch_deterministic_per_seed(self):
        schedule = make_schedule("fork", reexecute="all")
        a = simulate_batch(schedule, 300, rng=9)
        b = simulate_batch(schedule, 300, rng=9)
        assert np.array_equal(a.successes, b.successes)
        assert np.array_equal(a.energies, b.energies)
        assert np.array_equal(a.makespans, b.makespans)

    def test_trials_validation(self):
        schedule = make_schedule("chain")
        with pytest.raises(ValueError):
            simulate_batch(schedule, 0)


class TestBatchedFaultInjector:
    def test_sample_failures_one_vector(self):
        schedule = make_schedule("chain", reexecute="all")
        executions = [e for d in schedule.decisions.values() for e in d.executions]
        model = schedule.platform.reliability()
        flags = FaultInjector(model, rng=0).sample_failures(executions)
        assert flags.dtype == bool and flags.shape == (len(executions),)
        # Matches per-execution draws against the same uniform stream.
        manual = np.random.default_rng(0).random(len(executions))
        probs = FaultInjector(model, rng=0).failure_probabilities(executions)
        assert np.array_equal(flags, manual < probs)

    def test_failure_probabilities_match_scalar(self):
        schedule = make_schedule("fork", reexecute="all")
        executions = [e for d in schedule.decisions.values() for e in d.executions]
        for poisson in (True, False):
            injector = FaultInjector(schedule.platform.reliability(), rng=0,
                                     poisson=poisson)
            vector = injector.failure_probabilities(executions)
            for k, e in enumerate(executions):
                assert vector[k] == pytest.approx(injector.failure_probability(e))

    def test_empty_sequence(self):
        injector = FaultInjector(ReliabilityModel(fmin=0.1, fmax=1.0), rng=0)
        assert injector.sample_failures([]).shape == (0,)

    def test_as_generator_coercion(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen
        assert isinstance(as_generator(3), np.random.Generator)
        assert isinstance(as_generator(None), np.random.Generator)


class TestScheduleMemoisation:
    def test_derived_quantities_cached(self):
        schedule = make_schedule("random", processors=2)
        assert schedule.makespan() == schedule.makespan()
        assert "makespan" in schedule._derived_cache
        assert "durations" in schedule._derived_cache
        schedule.energy()
        assert "energy" in schedule._derived_cache

    def test_returned_dicts_are_copies(self):
        schedule = make_schedule("chain")
        d = schedule.durations()
        d.clear()
        assert schedule.durations()  # cache unaffected by caller mutation
        start, finish = schedule.start_finish_times()
        start.clear()
        assert schedule.start_finish_times()[0]

    def test_task_durations_alias(self):
        schedule = make_schedule("chain")
        assert schedule.task_durations() == schedule.durations()
