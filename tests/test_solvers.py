"""Tests for the solver registry, auto-dispatch and shared precomputation."""

from __future__ import annotations

import inspect
import math

import pytest

from repro.continuous.exhaustive import solve_tricrit_exhaustive
from repro.continuous.tricrit_chain import (
    reexecution_speed_floor,
    solve_tricrit_chain_exact,
)
from repro.continuous.tricrit_fork import solve_tricrit_fork
from repro.core.problems import BiCritProblem, TriCritProblem
from repro.discrete.tricrit_vdd import solve_tricrit_vdd_exact
from repro.discrete.vdd_lp import solve_bicrit_vdd_lp
from repro.experiments import run_solver_ablation_experiment
from repro.experiments.instances import (
    bicrit_problem,
    chain_suite,
    fork_suite,
    layered_suite,
    series_parallel_suite,
    tricrit_problem,
)
from repro.solvers import (
    EXACTNESS_ORDER,
    InadmissibleSolverError,
    NoAdmissibleSolverError,
    SolverContext,
    admissible_solvers,
    capability_rows,
    get_solver,
    iter_solvers,
    limits,
    select_solver,
    solve,
    solver_names,
    solvers_for,
)

#: (family, builder) pairs for one small instance per structure class.
def _small_instances():
    return {
        "chain": chain_suite(sizes=(4,), slacks=(2.0,), seed=11)[0],
        "fork": fork_suite(sizes=(3,), slacks=(2.0,), seed=12)[0],
        "series-parallel": series_parallel_suite(sizes=(4,), slacks=(2.0,), seed=13)[0],
        "dag": layered_suite(shapes=((3, 2),), num_processors=3,
                             slacks=(2.0,), seed=14)[0],
    }


# ----------------------------------------------------------------------
# registry metadata
# ----------------------------------------------------------------------
class TestRegistry:
    def test_names_unique_and_nonempty(self):
        names = solver_names()
        assert len(names) == len(set(names)) >= 15

    def test_every_impl_resolves_to_a_callable(self):
        for solver in iter_solvers():
            func = solver.resolve()
            assert callable(func), solver.name
            # The registered callable takes the problem as sole positional.
            params = list(inspect.signature(func).parameters.values())
            assert params[0].kind in (params[0].POSITIONAL_ONLY,
                                      params[0].POSITIONAL_OR_KEYWORD)

    def test_iter_solvers_is_exact_first(self):
        ranks = [EXACTNESS_ORDER.index(s.exactness) for s in iter_solvers()]
        assert ranks == sorted(ranks)

    def test_capability_rows_columns(self):
        rows = capability_rows()
        assert len(rows) == len(solver_names())
        for row in rows:
            assert set(row) == {"solver", "problem", "speeds", "structures",
                                "mapping", "exactness", "max_tasks", "summary"}

    def test_get_solver_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown solver"):
            get_solver("no-such-solver")

    def test_default_options_reflect_central_limits(self):
        assert (get_solver("tricrit-exhaustive").default_options["max_tasks"]
                == limits.EXHAUSTIVE_SUBSET_MAX_TASKS)
        assert (get_solver("tricrit-vdd-exact").default_options["max_tasks"]
                == limits.EXHAUSTIVE_SUBSET_MAX_TASKS)

    def test_function_defaults_match_descriptor_limits(self):
        """The 12-vs-14 max_tasks inconsistency stays fixed at the source."""
        def default_of(func, name):
            return inspect.signature(func).parameters[name].default

        assert (default_of(solve_tricrit_exhaustive, "max_tasks")
                == default_of(solve_tricrit_vdd_exact, "max_tasks")
                == limits.EXHAUSTIVE_SUBSET_MAX_TASKS)
        assert (default_of(solve_tricrit_chain_exact, "max_tasks")
                == limits.CHAIN_EXACT_MAX_TASKS)


# ----------------------------------------------------------------------
# SolverContext
# ----------------------------------------------------------------------
class TestSolverContext:
    def test_memoized_on_problem(self):
        problem = tricrit_problem(_small_instances()["chain"])
        assert SolverContext.for_problem(problem) is SolverContext.for_problem(problem)
        assert problem.context() is SolverContext.for_problem(problem)

    def test_structure_classification(self):
        for family, spec in _small_instances().items():
            problem = tricrit_problem(spec)
            assert SolverContext.for_problem(problem).structure == family \
                or (family == "dag"
                    and SolverContext.for_problem(problem).structure
                    in ("series-parallel", "dag"))

    def test_kind_and_speed_kind(self):
        spec = _small_instances()["chain"]
        assert SolverContext.for_problem(bicrit_problem(spec)).kind == "bicrit"
        tri = tricrit_problem(spec, speeds="vdd")
        ctx = SolverContext.for_problem(tri)
        assert ctx.kind == "tricrit" and ctx.speed_kind == "vdd"

    def test_reexecution_floor_matches_direct_computation(self):
        problem = tricrit_problem(_small_instances()["chain"])
        ctx = SolverContext.for_problem(problem)
        model = problem.reliability()
        for t in ctx.positive_tasks:
            direct = reexecution_speed_floor(model, problem.graph.weight(t),
                                             problem.platform.fmin)
            assert ctx.reexecution_floor(t) == pytest.approx(direct)
        assert set(ctx.reexecution_floors) == set(ctx.positive_tasks)

    def test_bounds_and_feasibility(self):
        problem = bicrit_problem(_small_instances()["dag"])
        ctx = SolverContext.for_problem(problem)
        assert ctx.min_makespan == pytest.approx(problem.min_makespan())
        assert ctx.is_feasible
        assert ctx.energy_lower_bound <= ctx.energy_upper_bound
        assert ctx.weight_array.shape == (problem.graph.num_tasks,)
        assert ctx.exposure_rate_array.shape == ctx.weight_array.shape


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
class TestDispatch:
    @pytest.mark.parametrize("family,expected", [
        ("chain", "tricrit-chain-exact"),
        ("fork", "tricrit-fork-poly"),
        ("series-parallel", "tricrit-pruned"),
        ("dag", "tricrit-pruned"),
    ])
    def test_auto_prefers_specialised_exact_tricrit(self, family, expected):
        problem = tricrit_problem(_small_instances()[family])
        assert select_solver(problem).name == expected
        result = solve(problem)
        assert result.metadata["dispatch"]["solver"] == expected
        assert result.metadata["dispatch"]["auto"] is True
        assert result.feasible

    def test_auto_bicrit_routes(self):
        chain = bicrit_problem(_small_instances()["chain"])
        assert select_solver(chain).name == "bicrit-closed-form"
        dag = bicrit_problem(_small_instances()["dag"])
        assert select_solver(dag).name == "bicrit-convex"
        vdd = bicrit_problem(_small_instances()["chain"], speeds="vdd")
        assert select_solver(vdd).name == "bicrit-vdd-lp"
        discrete = bicrit_problem(_small_instances()["chain"], speeds="discrete")
        assert select_solver(discrete).name == "bicrit-discrete-milp"

    def test_auto_uses_pruned_search_beyond_enumeration_limits(self):
        # Past the blind enumerators' ceiling the branch-and-bound solver
        # keeps the dispatch exact ...
        spec = layered_suite(shapes=((5, 4),), num_processors=4,
                             slacks=(2.0,), seed=3)[0]
        problem = tricrit_problem(spec)
        ctx = SolverContext.for_problem(problem)
        assert ctx.num_positive_tasks > limits.EXHAUSTIVE_SUBSET_MAX_TASKS
        assert ctx.num_positive_tasks <= limits.PRUNED_EXACT_MAX_TASKS
        assert select_solver(problem).name == "tricrit-pruned"

    def test_auto_falls_back_to_gap_mode_beyond_pruned_limit(self):
        # ... and past the pruned exact ceiling the anytime gap-certified
        # mode takes over (before any heuristic).
        spec = layered_suite(shapes=((8, 5),), num_processors=4,
                             slacks=(2.0,), seed=3)[0]
        problem = tricrit_problem(spec)
        ctx = SolverContext.for_problem(problem)
        assert ctx.num_positive_tasks > limits.PRUNED_EXACT_MAX_TASKS
        assert select_solver(problem).name == "tricrit-pruned-gap"

    def test_dispatch_identical_to_direct_calls(self):
        fork = tricrit_problem(_small_instances()["fork"])
        assert solve(fork, solver="tricrit-fork-poly").energy == pytest.approx(
            solve_tricrit_fork(fork).energy)
        chain = tricrit_problem(_small_instances()["chain"])
        assert solve(chain, solver="tricrit-chain-exact").energy == pytest.approx(
            solve_tricrit_chain_exact(chain).energy)
        vdd = bicrit_problem(_small_instances()["chain"], speeds="vdd")
        assert solve(vdd, solver="bicrit-vdd-lp").energy == pytest.approx(
            solve_bicrit_vdd_lp(vdd).energy)

    def test_named_solver_inadmissible_raises(self):
        chain = tricrit_problem(_small_instances()["chain"])
        with pytest.raises(InadmissibleSolverError, match="fork"):
            solve(chain, solver="tricrit-fork-poly")

    def test_validate_false_forwards_anyway(self):
        # A general DAG instance handed to the chain-greedy solver without
        # validation reaches the underlying function, which raises its own
        # (deeper) error -- the registry guard is what usually prevents this.
        dag = tricrit_problem(_small_instances()["dag"])
        with pytest.raises(ValueError, match="single-processor"):
            solve(dag, solver="tricrit-chain-greedy", validate=False)

    def test_no_admissible_solver_error_lists_reasons(self):
        # TRI-CRIT on a plain DISCRETE platform: no registered solver class.
        problem = tricrit_problem(_small_instances()["chain"], speeds="discrete")
        with pytest.raises(NoAdmissibleSolverError, match="tricrit-exhaustive"):
            solve(problem)

    def test_solver_options_forwarded(self):
        chain = tricrit_problem(_small_instances()["chain"])
        with pytest.raises(ValueError, match="limited to 2 tasks"):
            solve(chain, solver="tricrit-exhaustive", max_tasks=2)


# ----------------------------------------------------------------------
# exact-vs-heuristic agreement on randomized small instances
# ----------------------------------------------------------------------
class TestAgreement:
    TOL_EXACT = 2e-2        # cross-formulation (allocation vs convex) slack
    TOL_HEURISTIC = 1e-3    # heuristics may not beat the exact optimum

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("family", ["chain", "fork", "series-parallel", "dag"])
    def test_admissible_solvers_feasible_and_exact_agree(self, family, seed):
        base = 100 * seed + 7
        if family == "chain":
            spec = chain_suite(sizes=(4,), slacks=(2.5,), seed=base)[0]
        elif family == "fork":
            spec = fork_suite(sizes=(3,), slacks=(2.5,), seed=base)[0]
        elif family == "series-parallel":
            spec = series_parallel_suite(sizes=(4,), slacks=(2.5,), seed=base)[0]
        else:
            spec = layered_suite(shapes=((3, 2),), num_processors=3,
                                 slacks=(2.5,), seed=base)[0]
        problem = tricrit_problem(spec)
        exact_energies = {}
        heuristic_energies = {}
        for solver in admissible_solvers(problem):
            result = solve(problem, solver=solver.name)
            assert result.feasible, (solver.name, result.status)
            schedule = result.require_schedule()
            assert schedule.makespan() <= problem.deadline * (1.0 + 1e-6), solver.name
            report = problem.evaluate(schedule)
            assert report.min_reliability_margin >= -1e-9, solver.name
            if solver.exactness == "exact":
                exact_energies[solver.name] = result.energy
            else:
                heuristic_energies[solver.name] = result.energy
        assert exact_energies, "no exact solver admitted a small instance"
        best = min(exact_energies.values())
        for name, energy in exact_energies.items():
            assert energy <= best * (1.0 + self.TOL_EXACT), (name, energy, best)
        for name, energy in heuristic_energies.items():
            assert energy >= best * (1.0 - self.TOL_HEURISTIC), (name, energy, best)

    def test_vdd_exact_vs_heuristic(self):
        spec = chain_suite(sizes=(4,), slacks=(2.5,), seed=21)[0]
        problem = tricrit_problem(spec, speeds="vdd")
        exact = solve(problem, solver="tricrit-vdd-exact")
        heuristic = solve(problem, solver="tricrit-vdd-heuristic")
        assert exact.feasible and heuristic.feasible
        assert heuristic.energy >= exact.energy * (1.0 - self.TOL_HEURISTIC)


# ----------------------------------------------------------------------
# the E13 ablation driver
# ----------------------------------------------------------------------
class TestSolverAblation:
    def test_admissible_mode_covers_every_tricrit_solver(self):
        rows = run_solver_ablation_experiment(families=("chain",), sizes=(3,),
                                              slacks=(2.0,))
        solvers_seen = {r["solver"] for r in rows}
        expected = {s.name for s in iter_solvers() if s.problem == "tricrit"}
        assert solvers_seen == expected
        ran = [r for r in rows if r["status"] != "inadmissible"]
        exact_ratios = [r["ratio_to_exact"] for r in ran
                        if r["exactness"] == "exact"]
        assert exact_ratios and all(r == pytest.approx(1.0, rel=2e-2)
                                    for r in exact_ratios)
        for r in rows:
            if r["status"] == "inadmissible":
                assert r["reason"]
                assert math.isnan(r["energy"])

    def test_named_and_auto_modes(self):
        named = run_solver_ablation_experiment(
            families=("chain", "fork"), sizes=(3,), slacks=(2.0,),
            solver="tricrit-exhaustive")
        assert {r["solver"] for r in named} == {"tricrit-exhaustive"}
        assert all(r["status"] == "optimal" for r in named)
        auto = run_solver_ablation_experiment(families=("fork",), sizes=(3,),
                                              slacks=(2.0,), solver="auto")
        assert len(auto) == 1 and auto[0]["solver"] == "tricrit-fork-poly"
        assert auto[0]["dispatched"] is True

    def test_unknown_solver_name_raises_instead_of_empty_cache_record(self):
        with pytest.raises(KeyError, match="unknown solver"):
            run_solver_ablation_experiment(families=("chain",), sizes=(3,),
                                           solver="tricrit-exhastive")

    def test_solver_problem_kind_mismatch_raises(self):
        with pytest.raises(ValueError, match="solves BICRIT"):
            run_solver_ablation_experiment(families=("chain",), sizes=(3,),
                                           problem="tricrit",
                                           solver="bicrit-convex")

    def test_single_heuristic_cell_has_nan_ratio(self):
        rows = run_solver_ablation_experiment(families=("chain",), sizes=(3,),
                                              slacks=(2.0,),
                                              solver="tricrit-no-reexec")
        assert rows and all(math.isnan(r["ratio_to_exact"]) for r in rows)

    def test_infeasible_problem_file_yields_one_row(self, tmp_path):
        from repro.core.problem_io import save_problem_json

        base = tricrit_problem(chain_suite(sizes=(3,), slacks=(2.0,), seed=4)[0])
        tight = TriCritProblem(mapping=base.mapping, platform=base.platform,
                               deadline=base.min_makespan() * 0.5)
        path = tmp_path / "tight.json"
        save_problem_json(tight, path)
        rows = run_solver_ablation_experiment(families=(),
                                              problem_files=(str(path),))
        assert len(rows) == 1
        assert rows[0]["status"] == "infeasible-instance"
        assert "deadline" in rows[0]["reason"]

    def test_bicrit_and_problem_file_inputs(self, tmp_path):
        from repro.core.problem_io import save_problem_json

        problem = bicrit_problem(chain_suite(sizes=(3,), slacks=(2.0,), seed=9)[0])
        path = tmp_path / "stored.json"
        save_problem_json(problem, path)
        rows = run_solver_ablation_experiment(families=(), problem="bicrit",
                                              problem_files=(str(path),))
        assert rows and all(r["family"] == "file" for r in rows)
        assert {r["instance"] for r in rows} == {"stored"}
        assert any(r["solver"] == "bicrit-closed-form"
                   and r["status"] == "optimal" for r in rows)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSolversCli:
    def test_solvers_table(self, capsys):
        from repro.campaign.cli import main

        assert main(["solvers"]) == 0
        out = capsys.readouterr().out
        assert "registered solvers" in out
        for name in ("tricrit-exhaustive", "bicrit-vdd-lp"):
            assert name in out

    def test_solvers_names_and_markdown(self, capsys):
        from repro.campaign.cli import main

        assert main(["solvers", "--names"]) == 0
        names = capsys.readouterr().out.split()
        assert names == solver_names()
        assert main(["solvers", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("| solver |")
        assert "`tricrit-exhaustive`" in out

    def test_solvers_problem_file(self, capsys, tmp_path):
        from repro.campaign.cli import main
        from repro.core.problem_io import save_problem_json

        problem = tricrit_problem(fork_suite(sizes=(3,), slacks=(2.0,), seed=2)[0])
        path = tmp_path / "fork.json"
        save_problem_json(problem, path)
        assert main(["solvers", "--problem", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tricrit-fork-poly" in out and "admissible" in out
        assert main(["solvers", "--problem", str(tmp_path / "missing.json")]) == 2


# ----------------------------------------------------------------------
# admissibility listing
# ----------------------------------------------------------------------
class TestAdmissibility:
    def test_solvers_for_gives_reasons(self):
        problem = tricrit_problem(_small_instances()["dag"])
        triples = solvers_for(problem)
        assert len(triples) == len(solver_names())
        by_name = {s.name: (ok, reason) for s, ok, reason in triples}
        assert by_name["tricrit-exhaustive"] == (True, None)
        ok, reason = by_name["bicrit-convex"]
        assert not ok and "TRICRIT" in reason
        ok, reason = by_name["tricrit-vdd-exact"]
        assert not ok and "speed model" in reason

    def test_max_tasks_admissibility(self):
        spec = chain_suite(sizes=(16,), slacks=(2.0,), seed=5)[0]
        problem = tricrit_problem(spec)
        names = [s.name for s in admissible_solvers(problem)]
        assert "tricrit-exhaustive" not in names      # 16 > 14
        assert "tricrit-chain-exact" not in names     # dispatch caps at 14
        assert "tricrit-pruned" in names              # 16 <= 30
