"""Tests for BI-CRIT / TRI-CRIT problem-instance JSON (de)serialisation."""

from __future__ import annotations

import json

import pytest

from repro.core.problem_io import (
    load_problem_json,
    problem_from_dict,
    problem_to_dict,
    save_problem_json,
)
from repro.core.problems import BiCritProblem, TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.experiments.instances import (
    bicrit_problem,
    chain_suite,
    fork_suite,
    layered_suite,
    tricrit_problem,
)
from repro.solvers import solve


def _round_trip(problem):
    return problem_from_dict(json.loads(json.dumps(problem_to_dict(problem))))


class TestRoundTrip:
    @pytest.mark.parametrize("speeds", ["continuous", "discrete", "vdd",
                                        "incremental"])
    def test_bicrit_round_trip_preserves_solution(self, speeds):
        spec = chain_suite(sizes=(4,), slacks=(2.0,), seed=3)[0]
        problem = bicrit_problem(spec, speeds=speeds)
        clone = _round_trip(problem)
        assert isinstance(clone, BiCritProblem)
        assert not isinstance(clone, TriCritProblem)
        assert clone.deadline == problem.deadline
        assert clone.graph.total_weight() == pytest.approx(
            problem.graph.total_weight())
        assert clone.platform.num_processors == problem.platform.num_processors
        assert type(clone.platform.speed_model) is type(problem.platform.speed_model)
        assert solve(clone).energy == pytest.approx(solve(problem).energy)

    def test_tricrit_round_trip_preserves_reliability(self):
        spec = fork_suite(sizes=(3,), slacks=(2.0,), seed=5)[0]
        problem = tricrit_problem(spec, frel=0.8, lambda0=1e-4, sensitivity=2.5)
        clone = _round_trip(problem)
        assert isinstance(clone, TriCritProblem)
        model, clone_model = problem.reliability(), clone.reliability()
        assert clone_model.frel == pytest.approx(model.frel)
        assert clone_model.lambda0 == pytest.approx(model.lambda0)
        assert clone_model.sensitivity == pytest.approx(model.sensitivity)
        assert solve(clone).energy == pytest.approx(solve(problem).energy)

    def test_reliability_override_round_trips(self):
        spec = chain_suite(sizes=(3,), slacks=(2.0,), seed=8)[0]
        base = tricrit_problem(spec)
        override = ReliabilityModel(fmin=base.platform.fmin,
                                    fmax=base.platform.fmax,
                                    lambda0=3e-4, sensitivity=1.5, frel=0.7)
        problem = TriCritProblem(mapping=base.mapping, platform=base.platform,
                                 deadline=base.deadline,
                                 reliability_model=override)
        clone = _round_trip(problem)
        assert clone.reliability_model is not None
        assert clone.reliability().frel == pytest.approx(0.7)

    def test_mapping_order_preserved(self):
        spec = layered_suite(shapes=((3, 2),), num_processors=3,
                             slacks=(2.0,), seed=6)[0]
        problem = bicrit_problem(spec)
        clone = _round_trip(problem)
        original = [[str(t) for t in tasks]
                    for tasks in problem.mapping.as_lists()]
        assert [list(map(str, tasks))
                for tasks in clone.mapping.as_lists()] == original


class TestFiles:
    def test_save_and_load(self, tmp_path):
        spec = chain_suite(sizes=(4,), slacks=(2.0,), seed=2)[0]
        problem = tricrit_problem(spec)
        path = tmp_path / "instance.json"
        save_problem_json(problem, path)
        clone = load_problem_json(path)
        assert isinstance(clone, TriCritProblem)
        assert clone.deadline == problem.deadline

    def test_rejects_unknown_version_and_kind(self):
        spec = chain_suite(sizes=(3,), slacks=(2.0,), seed=2)[0]
        data = problem_to_dict(bicrit_problem(spec))
        bad_version = dict(data, format_version=99)
        with pytest.raises(ValueError, match="format version"):
            problem_from_dict(bad_version)
        bad_kind = dict(data, kind="quadcrit")
        with pytest.raises(ValueError, match="problem kind"):
            problem_from_dict(bad_kind)

    def test_rejects_unknown_speed_model(self):
        spec = chain_suite(sizes=(3,), slacks=(2.0,), seed=2)[0]
        data = problem_to_dict(bicrit_problem(spec))
        data["platform"]["speed_model"] = {"kind": "warp"}
        with pytest.raises(ValueError, match="speed model"):
            problem_from_dict(data)
