"""Tests of the closed-form BI-CRIT CONTINUOUS solutions (paper Section III)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous.closed_form import (
    NoFeasibleSpeedError,
    chain_bicrit,
    equivalent_weight,
    fork_bicrit,
    fork_energy,
    join_bicrit,
    series_parallel_bicrit,
)
from repro.dag import generators
from repro.dag.series_parallel import SPLeaf, SPParallel, SPSeries, decompose


class TestChainClosedForm:
    def test_uniform_speed(self):
        sol = chain_bicrit([1.0, 2.0, 3.0], 12.0)
        assert all(f == pytest.approx(0.5) for f in sol.speeds.values())
        assert sol.energy == pytest.approx(6.0 * 0.25)
        assert sum(sol.durations.values()) == pytest.approx(12.0)

    def test_energy_formula(self):
        # E = (sum w)^3 / D^2.
        sol = chain_bicrit([2.0, 2.0], 4.0)
        assert sol.energy == pytest.approx(4.0 ** 3 / 16.0)

    def test_fmax_infeasible(self):
        with pytest.raises(NoFeasibleSpeedError):
            chain_bicrit([10.0], 5.0, fmax=1.0)

    def test_fmin_clamp(self):
        sol = chain_bicrit([1.0], 100.0, fmin=0.5)
        assert sol.speeds["T0"] == pytest.approx(0.5)

    def test_custom_task_ids(self):
        sol = chain_bicrit([1.0, 1.0], 4.0, task_ids=["a", "b"])
        assert set(sol.speeds) == {"a", "b"}
        with pytest.raises(ValueError):
            chain_bicrit([1.0, 1.0], 4.0, task_ids=["a"])

    def test_zero_weights(self):
        sol = chain_bicrit([0.0, 0.0], 4.0)
        assert sol.energy == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_bicrit([1.0], 0.0)
        with pytest.raises(ValueError):
            chain_bicrit([-1.0], 1.0)


class TestForkTheorem:
    def test_paper_formula_speeds(self):
        w0, children, D = 2.0, [1.0, 3.0, 2.0], 5.0
        norm = (sum(w ** 3 for w in children)) ** (1.0 / 3.0)
        sol = fork_bicrit(w0, children, D)
        assert sol.speeds["T0"] == pytest.approx((norm + w0) / D)
        for i, w in enumerate(children, start=1):
            assert sol.speeds[f"T{i}"] == pytest.approx(sol.speeds["T0"] * w / norm)

    def test_paper_energy_formula(self):
        w0, children, D = 2.0, [1.0, 3.0, 2.0], 5.0
        sol = fork_bicrit(w0, children, D)
        expected = fork_energy(w0, children, D)
        assert sol.energy == pytest.approx(expected)
        norm = (sum(w ** 3 for w in children)) ** (1.0 / 3.0)
        assert expected == pytest.approx((norm + w0) ** 3 / D ** 2)

    def test_makespan_is_tight(self):
        sol = fork_bicrit(2.0, [1.0, 3.0], 4.0)
        # Source duration plus the longest child duration equals the deadline.
        child_finish = [sol.durations["T0"] + sol.durations[t] for t in ("T1", "T2")]
        assert max(child_finish) == pytest.approx(4.0)

    def test_children_finish_simultaneously(self):
        sol = fork_bicrit(1.0, [1.0, 2.0, 5.0], 6.0)
        finishes = {t: sol.durations["T0"] + sol.durations[t] for t in ("T1", "T2", "T3")}
        values = list(finishes.values())
        assert max(values) == pytest.approx(min(values))

    def test_fmax_saturation_case(self):
        # f0 would exceed fmax, so the source runs at fmax and children share D'.
        w0, children, D, fmax = 3.0, [2.0, 2.0], 5.5, 1.0
        norm = (sum(w ** 3 for w in children)) ** (1.0 / 3.0)
        assert (norm + w0) / D > fmax
        sol = fork_bicrit(w0, children, D, fmax=fmax)
        assert sol.speeds["T0"] == pytest.approx(fmax)
        d_prime = D - w0 / fmax
        assert sol.speeds["T1"] == pytest.approx(2.0 / d_prime)

    def test_no_solution_when_even_saturated_children_too_slow(self):
        with pytest.raises(NoFeasibleSpeedError):
            fork_bicrit(4.0, [3.0, 3.0], 5.0, fmax=1.0)

    def test_no_solution_when_source_alone_exceeds_deadline(self):
        with pytest.raises(NoFeasibleSpeedError):
            fork_bicrit(10.0, [1.0], 5.0, fmax=1.0)

    def test_degenerate_fork_without_children(self):
        sol = fork_bicrit(3.0, [], 6.0)
        assert sol.speeds["T0"] == pytest.approx(0.5)
        assert sol.energy == pytest.approx(3.0 * 0.25)

    def test_fmin_clamp_marks_out_of_closed_form(self):
        sol = fork_bicrit(1.0, [0.001, 2.0], 3.0, fmin=0.5)
        assert not sol.within_bounds  # tiny child clamped to fmin

    def test_join_mirror(self):
        fork_sol = fork_bicrit(2.0, [1.0, 3.0], 5.0)
        join_sol = join_bicrit([1.0, 3.0], 2.0, 5.0)
        assert join_sol.energy == pytest.approx(fork_sol.energy)
        assert join_sol.structure == "join"

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=8),
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_fork_energy_at_least_chain_lower_bound_of_critical_path(self, children, w0, D):
        """The fork optimum is at least the energy of its heaviest source+child
        path executed alone, and at most the energy of serialising everything."""
        energy = fork_energy(w0, children, D)
        heaviest = max(children)
        path_energy = (w0 + heaviest) ** 3 / D ** 2
        serial_energy = (w0 + sum(children)) ** 3 / D ** 2
        assert path_energy - 1e-9 <= energy <= serial_energy + 1e-9


class TestSeriesParallelClosedForm:
    def test_equivalent_weight_leaf_series_parallel(self):
        tree = SPSeries((SPLeaf("a", 1.0),
                         SPParallel((SPLeaf("b", 2.0), SPLeaf("c", 3.0)))))
        expected = 1.0 + (2.0 ** 3 + 3.0 ** 3) ** (1.0 / 3.0)
        assert equivalent_weight(tree) == pytest.approx(expected)

    def test_fork_is_special_case_of_sp_recursion(self):
        w0, children, D = 2.0, [1.0, 3.0, 2.0], 5.0
        graph = generators.fork(w0, children)
        sp = series_parallel_bicrit(graph, D)
        assert sp.energy == pytest.approx(fork_energy(w0, children, D))

    def test_chain_is_special_case(self):
        graph = generators.chain([1.0, 2.0, 3.0])
        sp = series_parallel_bicrit(graph, 12.0)
        assert sp.energy == pytest.approx(6.0 ** 3 / 144.0)

    def test_energy_equals_equivalent_weight_formula(self):
        for seed in range(4):
            graph = generators.random_series_parallel(7, seed=seed)
            tree = decompose(graph)
            D = 2.0 * graph.critical_path_weight()
            sp = series_parallel_bicrit(graph, D)
            W = equivalent_weight(tree)
            assert sp.energy == pytest.approx(W ** 3 / D ** 2, rel=1e-9)

    def test_durations_satisfy_precedence_budget(self):
        graph = generators.fork_join(1.0, [2.0, 5.0], 1.5)
        D = 6.0
        sp = series_parallel_bicrit(graph, D)
        # Longest path through any branch equals the deadline.
        finish = {}
        for t in graph.topological_order():
            start = max((finish[p] for p in graph.predecessors(t)), default=0.0)
            finish[t] = start + sp.durations[t]
        assert max(finish.values()) == pytest.approx(D)

    def test_bounds_flag(self):
        graph = generators.fork(1.0, [1.0, 1.0])
        tight = series_parallel_bicrit(graph, 1.0, fmax=1.0)
        assert not tight.within_bounds
        loose = series_parallel_bicrit(graph, 10.0, fmax=1.0, fmin=0.01)
        assert loose.within_bounds

    def test_non_sp_graph_raises(self):
        from repro.dag.series_parallel import NotSeriesParallelError
        from repro.dag.taskgraph import TaskGraph

        g = TaskGraph({"a": 1, "b": 1, "c": 1, "d": 1},
                      [("a", "c"), ("a", "d"), ("b", "d")])
        with pytest.raises(NotSeriesParallelError):
            series_parallel_bicrit(g, 5.0)

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            series_parallel_bicrit(generators.chain([1.0]), 0.0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=200),
           st.floats(min_value=1.2, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_sp_energy_between_critical_path_and_serial_bounds(self, n, seed, slack):
        graph = generators.random_series_parallel(n, seed=seed)
        D = slack * graph.critical_path_weight()
        sp = series_parallel_bicrit(graph, D)
        cp_bound = graph.critical_path_weight() ** 3 / D ** 2
        serial_bound = graph.total_weight() ** 3 / D ** 2
        assert cp_bound - 1e-9 <= sp.energy <= serial_bound + 1e-9
