"""Smoke tests for the ``examples/`` scripts.

Each example's ``main()`` accepts size/trial keyword overrides, so the suite
imports every script and runs it end-to-end at tiny sizes -- the scripts
cannot silently rot when the library API moves underneath them.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script file -> tiny-size keyword overrides for ``main()``
EXAMPLES = {
    "quickstart.py": dict(child_weights=(2.0, 5.0)),
    "discrete_dvfs_comparison.py": dict(width=2, steps=2,
                                        deadline_slacks=(1.4, 2.0)),
    "hpc_platform_energy.py": dict(num_phases=2, width=2, num_processors=2),
    "reliability_tradeoff.py": dict(layers=2, width=2, trials=500),
}


def _load(script: str):
    path = EXAMPLES_DIR / script
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLES), (
        "examples/ and the smoke-test table drifted apart; update EXAMPLES "
        "in tests/test_examples.py")


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs_at_tiny_size(script, capsys):
    module = _load(script)
    module.main(**EXAMPLES[script])
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
