"""Tests of the DAG analysis utilities (levels, slack, bounds)."""

from __future__ import annotations

import pytest

from repro.dag import generators
from repro.dag.analysis import (
    bottom_levels,
    depth_layers,
    energy_lower_bound,
    makespan_lower_bound,
    max_parallelism,
    parallelism_profile,
    slack,
    summarize,
    top_levels,
)
from repro.dag.taskgraph import TaskGraph


@pytest.fixture
def diamond() -> TaskGraph:
    return TaskGraph(
        {"s": 1.0, "l": 2.0, "r": 4.0, "t": 1.0},
        [("s", "l"), ("s", "r"), ("l", "t"), ("r", "t")],
    )


class TestLevels:
    def test_top_levels(self, diamond):
        tl = top_levels(diamond)
        assert tl["s"] == 0.0
        assert tl["l"] == 1.0
        assert tl["r"] == 1.0
        assert tl["t"] == 5.0  # through the heavier branch

    def test_bottom_levels(self, diamond):
        bl = bottom_levels(diamond)
        assert bl["t"] == 1.0
        assert bl["r"] == 5.0
        assert bl["l"] == 3.0
        assert bl["s"] == 6.0

    def test_top_plus_bottom_on_critical_path(self, diamond):
        tl, bl = top_levels(diamond), bottom_levels(diamond)
        cp = diamond.critical_path_weight()
        for t in diamond.critical_path():
            assert tl[t] + bl[t] == pytest.approx(cp)

    def test_depth_layers(self, diamond):
        layers = depth_layers(diamond)
        assert layers[0] == ["s"]
        assert set(layers[1]) == {"l", "r"}
        assert layers[2] == ["t"]

    def test_depth_layers_empty(self):
        assert depth_layers(TaskGraph({})) == []


class TestSlackAndParallelism:
    def test_slack_zero_on_critical_path(self, diamond):
        s = slack(diamond)
        assert s["s"] == pytest.approx(0.0)
        assert s["r"] == pytest.approx(0.0)
        assert s["t"] == pytest.approx(0.0)
        assert s["l"] == pytest.approx(2.0)

    def test_slack_with_deadline(self, diamond):
        s = slack(diamond, deadline=8.0)
        assert s["s"] == pytest.approx(2.0)

    def test_parallelism_profile(self, diamond):
        assert parallelism_profile(diamond) == [1, 2, 1]
        assert max_parallelism(diamond) == 2
        assert max_parallelism(TaskGraph({})) == 0


class TestBounds:
    def test_makespan_lower_bound_critical_path_dominates(self, diamond):
        # With many processors the critical path dominates.
        assert makespan_lower_bound(diamond, 8, 1.0) == pytest.approx(6.0)

    def test_makespan_lower_bound_area_dominates(self, diamond):
        # With a single processor the total work dominates.
        assert makespan_lower_bound(diamond, 1, 1.0) == pytest.approx(8.0)

    def test_makespan_lower_bound_scales_with_speed(self, diamond):
        assert makespan_lower_bound(diamond, 1, 2.0) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            makespan_lower_bound(diamond, 0, 1.0)
        with pytest.raises(ValueError):
            makespan_lower_bound(diamond, 1, 0.0)

    def test_energy_lower_bound_positive_and_monotone_in_deadline(self, diamond):
        tight = energy_lower_bound(diamond, 6.0)
        loose = energy_lower_bound(diamond, 12.0)
        assert tight > loose > 0.0
        with pytest.raises(ValueError):
            energy_lower_bound(diamond, 0.0)

    def test_energy_lower_bound_is_valid_for_uniform_schedule(self, diamond):
        # A very loose but safe check: the bound never exceeds the energy of
        # running every task at the speed needed to finish the critical path
        # within the deadline on infinitely many processors.
        deadline = 10.0
        speed = diamond.critical_path_weight() / deadline
        uniform_energy = sum(w * speed ** 2 for w in diamond.weights().values())
        # The bound uses the critical path only, so it is at most that.
        assert energy_lower_bound(diamond, deadline) <= uniform_energy + 1e-9


class TestSummary:
    def test_summarize_chain(self):
        g = generators.chain([1.0, 2.0, 3.0])
        s = summarize(g)
        assert s.is_chain and not s.is_fork
        assert s.depth == 3 and s.max_width == 1
        assert s.parallelism_ratio == pytest.approx(1.0)

    def test_summarize_fork(self):
        g = generators.fork(1.0, [2.0, 2.0, 2.0])
        s = summarize(g)
        assert s.is_fork and not s.is_chain
        assert s.max_width == 3
        assert s.parallelism_ratio == pytest.approx(7.0 / 3.0)

    def test_parallelism_ratio_degenerate(self):
        s = summarize(TaskGraph({"a": 0.0}))
        assert s.parallelism_ratio == 0.0
