"""Tests of the transient-fault reliability model (Section II.b, equation (1))."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reliability import ReliabilityModel


@pytest.fixture
def model() -> ReliabilityModel:
    return ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4, sensitivity=3.0)


class TestFaultRate:
    def test_rate_at_fmax_is_lambda0(self, model):
        assert model.fault_rate(1.0) == pytest.approx(1e-4)

    def test_rate_at_fmin_is_scaled_by_exp_d(self, model):
        assert model.fault_rate(0.1) == pytest.approx(1e-4 * math.exp(3.0))

    def test_rate_decreases_with_speed(self, model):
        speeds = np.linspace(0.1, 1.0, 20)
        rates = model.fault_rate(speeds)
        assert np.all(np.diff(rates) < 0)

    def test_zero_sensitivity_means_constant_rate(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4, sensitivity=0.0)
        assert model.fault_rate(0.1) == pytest.approx(model.fault_rate(1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityModel(fmin=0.0, fmax=1.0)
        with pytest.raises(ValueError):
            ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=-1.0)
        with pytest.raises(ValueError):
            ReliabilityModel(fmin=0.1, fmax=1.0, sensitivity=-0.5)
        with pytest.raises(ValueError):
            ReliabilityModel(fmin=0.1, fmax=1.0, frel=2.0)


class TestReliability:
    def test_equation_one(self, model):
        # R_i(f) = 1 - lambda0 * exp(d*(fmax-f)/(fmax-fmin)) * w/f.
        w, f = 5.0, 0.5
        expected = 1.0 - 1e-4 * math.exp(3.0 * (1.0 - 0.5) / 0.9) * w / f
        assert model.reliability(w, f) == pytest.approx(expected)

    def test_reliability_increases_with_speed(self, model):
        w = 3.0
        speeds = np.linspace(0.1, 1.0, 15)
        rel = model.reliability(w, speeds)
        assert np.all(np.diff(rel) > 0)

    def test_default_threshold_is_reliability_at_fmax(self, model):
        w = 2.0
        assert model.frel == pytest.approx(1.0)
        assert model.threshold(w) == pytest.approx(model.reliability(w, 1.0))

    def test_single_execution_needs_at_least_frel(self, model):
        w = 2.0
        assert model.single_execution_ok(w, model.frel)
        assert model.single_execution_ok(w, model.frel + 1e-9)
        assert not model.single_execution_ok(w, 0.5)

    def test_reexecution_reliability_formula(self, model):
        w, f1, f2 = 2.0, 0.4, 0.6
        p1 = model.failure_probability(w, f1)
        p2 = model.failure_probability(w, f2)
        assert model.reexecution_reliability(w, f1, f2) == pytest.approx(1.0 - p1 * p2)

    def test_reexecution_can_beat_threshold_at_low_speed(self, model):
        w = 2.0
        slow = 0.4
        assert not model.single_execution_ok(w, slow)
        assert model.reexecution_ok(w, slow, slow)

    def test_min_equal_reexecution_speed(self, model):
        w = 3.0
        f_star = model.min_equal_reexecution_speed(w)
        assert model.fmin <= f_star <= model.frel
        # At the returned speed the constraint holds; slightly below it fails
        # (unless it is already clipped at fmin).
        assert model.reexecution_ok(w, f_star, f_star, tol=1e-9)
        if f_star > model.fmin + 1e-9:
            assert not model.reexecution_ok(w, f_star * 0.98, f_star * 0.98)

    def test_custom_frel_threshold(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4, frel=0.7)
        w = 2.0
        assert model.single_execution_ok(w, 0.7)
        assert not model.single_execution_ok(w, 0.6)

    def test_zero_lambda_gives_perfect_reliability(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=0.0)
        assert model.reliability(5.0, 0.1) == pytest.approx(1.0)
        assert model.min_equal_reexecution_speed(5.0) == pytest.approx(0.1)

    def test_failure_probability_clipped_to_one(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=10.0, sensitivity=5.0)
        assert model.failure_probability(100.0, 0.1) == pytest.approx(1.0)

    def test_speed_must_be_positive(self, model):
        with pytest.raises(ValueError):
            model.failure_probability(1.0, 0.0)


class TestReliabilityProperties:
    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.11, max_value=0.99))
    @settings(max_examples=80, deadline=None)
    def test_reexecution_at_least_as_reliable_as_single(self, weight, speed):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-3, sensitivity=4.0)
        single = model.reliability(weight, speed)
        double = model.reexecution_reliability(weight, speed, speed)
        assert double >= single - 1e-12

    @given(st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_min_reexec_speed_below_frel(self, weight):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-3, sensitivity=4.0)
        f_star = model.min_equal_reexecution_speed(weight)
        assert model.fmin - 1e-12 <= f_star <= model.frel + 1e-12
        assert model.reexecution_ok(weight, f_star, f_star, tol=1e-9)

    @given(st.floats(min_value=0.1, max_value=20.0),
           st.floats(min_value=0.15, max_value=1.0),
           st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_heavier_tasks_are_less_reliable(self, weight, speed, factor):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-3)
        assert model.reliability(weight * factor, speed) <= model.reliability(weight, speed) + 1e-12
