"""Tests of the BI-CRIT CONTINUOUS dispatcher (closed form vs convex routes)."""

from __future__ import annotations

import pytest

from repro.continuous.bicrit import solve_bicrit_continuous
from repro.continuous.closed_form import fork_energy
from repro.core.problems import BiCritProblem
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


def _problem(graph, platform, mapping, slack=1.5):
    finish = {}
    augmented = mapping.augmented_graph()
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t) / platform.fmax
    deadline = slack * max(finish.values())
    return BiCritProblem(mapping, platform, deadline)


class TestRouting:
    def test_chain_route(self):
        graph = generators.chain([1.0, 2.0, 3.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = _problem(graph, platform, Mapping.single_processor(graph))
        result = solve_bicrit_continuous(problem)
        assert "chain" in result.solver
        assert result.status == "optimal"

    def test_any_graph_serialised_on_one_processor_uses_chain_route(self):
        graph = generators.random_layered_dag(3, 2, seed=1)
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = _problem(graph, platform, Mapping.single_processor(graph))
        result = solve_bicrit_continuous(problem)
        assert "chain" in result.solver
        # All tasks share the same speed.
        speeds = {f for spd in result.schedule.speed_assignment().values() for f in spd}
        assert len(speeds) == 1

    def test_fork_route(self):
        graph = generators.fork(2.0, [1.0, 3.0, 2.0])
        platform = Platform(4, ContinuousSpeeds(0.01, 10.0))
        problem = _problem(graph, platform, Mapping.one_task_per_processor(graph))
        result = solve_bicrit_continuous(problem)
        assert "fork" in result.solver
        assert result.energy == pytest.approx(
            fork_energy(2.0, [1.0, 3.0, 2.0], problem.deadline), rel=1e-9
        )

    def test_series_parallel_route(self):
        graph = generators.fork_join(1.0, [2.0, 3.0], 1.0)
        platform = Platform(4, ContinuousSpeeds(0.01, 10.0))
        problem = _problem(graph, platform, Mapping.one_task_per_processor(graph))
        result = solve_bicrit_continuous(problem)
        assert "series_parallel" in result.solver

    def test_general_dag_falls_back_to_convex(self):
        # The non-SP "N" graph forces the convex route.
        from repro.dag.taskgraph import TaskGraph

        graph = TaskGraph({"a": 1.0, "b": 1.0, "c": 1.0, "d": 1.0},
                          [("a", "c"), ("a", "d"), ("b", "d")])
        platform = Platform(4, ContinuousSpeeds(0.01, 10.0))
        problem = _problem(graph, platform, Mapping.one_task_per_processor(graph))
        result = solve_bicrit_continuous(problem)
        assert result.solver == "continuous-convex"
        assert result.feasible

    def test_mapped_sp_graph_with_extra_serialisation_uses_convex(self):
        graph = generators.fork(1.0, [2.0, 3.0, 1.0])
        platform = Platform(2, ContinuousSpeeds(0.01, 10.0))
        mapping = critical_path_mapping(graph, 2, fmax=platform.fmax).mapping
        problem = _problem(graph, platform, mapping)
        result = solve_bicrit_continuous(problem)
        assert result.solver == "continuous-convex"

    def test_prefer_closed_form_flag(self):
        graph = generators.chain([1.0, 2.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = _problem(graph, platform, Mapping.single_processor(graph))
        closed = solve_bicrit_continuous(problem, prefer_closed_form=True)
        numeric = solve_bicrit_continuous(problem, prefer_closed_form=False)
        assert "closed-form" in closed.solver
        assert numeric.solver == "continuous-convex"
        assert numeric.energy == pytest.approx(closed.energy, rel=1e-4)

    def test_infeasible_chain_instance(self):
        graph = generators.chain([10.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, 5.0)
        result = solve_bicrit_continuous(problem)
        assert result.status == "infeasible"

    def test_closed_form_schedules_are_feasible(self):
        for seed in range(3):
            graph = generators.random_fork(5, seed=seed)
            platform = Platform(6, ContinuousSpeeds(0.01, 10.0))
            problem = _problem(graph, platform, Mapping.one_task_per_processor(graph),
                               slack=2.0)
            result = solve_bicrit_continuous(problem)
            schedule = result.require_schedule()
            assert schedule.is_feasible(problem.deadline, deadline_tol=1e-6)
