"""Parity and certificate tests for the pruned TRI-CRIT branch-and-bound.

The pruned solver replaces the blind ``2^n`` subset enumeration past the
reference enumerators' ceiling, so the single property that matters is
*agreement*: on every instance both can solve, the branch-and-bound optimum
must equal the enumerated optimum.  Hypothesis drives randomized chains
against :func:`solve_tricrit_chain_exact` and randomized forks /
series-parallel DAGs against :func:`solve_tricrit_exhaustive`; further
tests pin down the gap certificate (the reported lower bound really is a
bound), degenerate platforms, and infeasibility propagation end-to-end
through the v1 API error codes.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.api.errors import INFEASIBLE_PROBLEM, ApiError
from repro.continuous.exhaustive import best_known_tricrit, solve_tricrit_exhaustive
from repro.continuous.heuristics import best_of_heuristics
from repro.continuous.tricrit_chain import solve_tricrit_chain_exact
from repro.core.problem_io import problem_to_dict
from repro.core.problems import InfeasibleProblemError, TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.platform import Platform
from repro.solvers.pruned import solve_tricrit_pruned, solve_tricrit_pruned_gap

REL = 1e-9


def make_problem(graph, num_processors, slack, *,
                 lambda0=1e-4, fmin=0.1, fmax=1.0) -> TriCritProblem:
    model = ReliabilityModel(fmin=fmin, fmax=fmax, lambda0=lambda0)
    platform = Platform(num_processors, ContinuousSpeeds(fmin, fmax),
                        reliability_model=model)
    mapping = critical_path_mapping(graph, num_processors, fmax=fmax).mapping
    augmented = mapping.augmented_graph()
    finish = {}
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t)
    deadline = slack * max(finish.values())
    return TriCritProblem(mapping, platform, deadline)


# ----------------------------------------------------------------------
# parity with the reference enumerators
# ----------------------------------------------------------------------
class TestChainParity:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(weights=st.lists(st.floats(min_value=0.0, max_value=8.0),
                            min_size=1, max_size=10),
           slack=st.floats(min_value=1.05, max_value=4.0),
           lambda0=st.sampled_from([1e-5, 1e-4, 1e-3]))
    def test_pruned_matches_chain_enumeration(self, weights, slack, lambda0):
        if not any(w > 0 for w in weights):
            weights = weights + [1.0]    # at least one positive task
        problem = make_problem(generators.chain(weights), 1, slack,
                               lambda0=lambda0)
        reference = solve_tricrit_chain_exact(problem)
        pruned = solve_tricrit_pruned(problem)
        assert pruned.feasible == reference.feasible
        if reference.feasible:
            assert pruned.status == "optimal"
            assert pruned.energy == pytest.approx(reference.energy, rel=REL)
        else:
            assert pruned.status == "infeasible"
            assert math.isinf(pruned.energy)

    def test_pruned_reexecution_set_is_reliable(self):
        problem = make_problem(generators.random_chain(9, seed=3), 1, 2.0,
                               lambda0=1e-3)
        result = solve_tricrit_pruned(problem)
        assert result.feasible
        report = problem.evaluate(result.require_schedule())
        assert report.feasible
        assert result.energy == pytest.approx(report.energy, rel=1e-6)

    def test_evaluation_count_is_far_below_two_to_the_n(self):
        # n = 14 would cost 16384 enumerated subsets; the pruned search must
        # certify the same optimum with a small fraction of that.
        problem = make_problem(generators.random_chain(14, seed=7), 1, 2.0,
                               lambda0=1e-3)
        reference = solve_tricrit_chain_exact(problem)
        pruned = solve_tricrit_pruned(problem)
        assert pruned.energy == pytest.approx(reference.energy, rel=REL)
        assert pruned.metadata["subsets_evaluated"] < 2 ** 14 / 8


class TestMultiProcessorParity:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("slack", [1.3, 2.0, 3.5])
    def test_fork_matches_exhaustive(self, seed, slack):
        problem = make_problem(generators.random_fork(6, seed=seed), 4, slack,
                               lambda0=1e-3)
        reference = solve_tricrit_exhaustive(problem)
        pruned = solve_tricrit_pruned(problem)
        assert pruned.feasible == reference.feasible
        if reference.feasible:
            assert pruned.energy == pytest.approx(reference.energy, rel=REL)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("slack", [1.3, 2.0, 3.5])
    def test_series_parallel_matches_exhaustive(self, seed, slack):
        problem = make_problem(
            generators.random_series_parallel(5, seed=seed), 2, slack,
            lambda0=1e-3)
        reference = solve_tricrit_exhaustive(problem)
        pruned = solve_tricrit_pruned(problem)
        assert pruned.feasible == reference.feasible
        if reference.feasible:
            assert pruned.energy == pytest.approx(reference.energy, rel=REL)

    def test_layered_dag_matches_exhaustive(self):
        problem = make_problem(generators.random_layered_dag(4, 3, seed=2),
                               3, 2.0, lambda0=1e-3)
        reference = solve_tricrit_exhaustive(problem)
        pruned = solve_tricrit_pruned(problem)
        assert pruned.energy == pytest.approx(reference.energy, rel=REL)


# ----------------------------------------------------------------------
# gap-certified mode
# ----------------------------------------------------------------------
class TestGapMode:
    def test_lower_bound_is_a_true_bound(self):
        # The certificate must bracket the enumerated optimum from below and
        # the (feasible) incumbent from above, and the reported gap must be
        # consistent with the two.
        problem = make_problem(generators.random_chain(12, seed=5), 1, 1.8,
                               lambda0=1e-3)
        optimum = solve_tricrit_chain_exact(problem).energy
        result = solve_tricrit_pruned_gap(problem)
        lb = result.metadata["lower_bound"]
        assert lb <= optimum * (1 + REL)
        assert result.energy >= optimum * (1 - REL)
        gap = result.metadata["optimality_gap"]
        assert gap >= (result.energy - lb) / result.energy - REL
        assert 0.0 <= gap <= 1.0

    def test_tiny_node_budget_still_returns_a_certificate(self):
        problem = make_problem(generators.random_chain(12, seed=5), 1, 1.8,
                               lambda0=1e-3)
        optimum = solve_tricrit_chain_exact(problem).energy
        result = solve_tricrit_pruned_gap(problem, node_budget=1,
                                          gap_target=0.0)
        assert result.feasible
        assert result.metadata["lower_bound"] <= optimum * (1 + REL)
        assert result.energy >= optimum * (1 - REL)

    def test_no_size_limit_in_gap_mode(self):
        problem = make_problem(generators.random_chain(60, seed=1), 1, 2.0,
                               lambda0=1e-3)
        result = solve_tricrit_pruned_gap(problem)
        assert result.feasible
        assert result.metadata["optimality_gap"] <= 0.05

    def test_exact_mode_rejects_oversized_instances(self):
        problem = make_problem(generators.random_chain(31, seed=1), 1, 2.0)
        with pytest.raises(ValueError, match="tricrit-pruned-gap"):
            solve_tricrit_pruned(problem, max_tasks=30)


# ----------------------------------------------------------------------
# degenerate platforms and edge cases
# ----------------------------------------------------------------------
class TestDegenerateInstances:
    def test_single_speed_platform(self):
        # fmin == fmax: the water-filling bracket is a point; the solver must
        # not bisect it into a crash and must agree with the enumerator.
        problem = make_problem(generators.random_chain(5, seed=9), 1, 3.0,
                               fmin=1.0, fmax=1.0, lambda0=1e-3)
        reference = solve_tricrit_chain_exact(problem)
        pruned = solve_tricrit_pruned(problem)
        assert pruned.feasible == reference.feasible
        if reference.feasible:
            assert pruned.energy == pytest.approx(reference.energy, rel=REL)

    def test_zero_slack_deadline(self):
        # Deadline exactly the fmax makespan: feasible, nothing re-executed.
        graph = generators.random_chain(6, seed=2)
        problem = make_problem(graph, 1, 1.0)
        reference = solve_tricrit_chain_exact(problem)
        pruned = solve_tricrit_pruned(problem)
        assert pruned.feasible == reference.feasible
        if reference.feasible:
            assert pruned.energy == pytest.approx(reference.energy, rel=REL)
            assert pruned.metadata["reexecuted"] == []

    def test_infeasible_deadline_reports_infeasible(self):
        graph = generators.chain([4.0, 4.0])
        problem = make_problem(graph, 1, 0.5)
        result = solve_tricrit_pruned(problem)
        assert result.status == "infeasible"
        assert not result.feasible
        assert math.isinf(result.energy)

    def test_zero_weight_tasks_do_not_count_against_limits(self):
        weights = [1.0] * 8 + [0.0] * 30    # 38 tasks, 8 positive
        problem = make_problem(generators.chain(weights), 1, 2.0,
                               lambda0=1e-3)
        reference = solve_tricrit_chain_exact(problem)
        pruned = solve_tricrit_pruned(problem)    # 38 > 30 but 8 positive
        assert pruned.energy == pytest.approx(reference.energy, rel=REL)


# ----------------------------------------------------------------------
# infeasibility propagation (reference records and the API boundary)
# ----------------------------------------------------------------------
class TestInfeasibilityPropagation:
    def _infeasible_problem(self) -> TriCritProblem:
        return make_problem(generators.chain([4.0, 4.0]), 1, 0.5)

    def test_best_of_heuristics_raises(self):
        with pytest.raises(InfeasibleProblemError):
            best_of_heuristics(self._infeasible_problem())

    def test_best_known_raises_on_every_tier(self):
        problem = self._infeasible_problem()
        with pytest.raises(InfeasibleProblemError):
            best_known_tricrit(problem)                       # exhaustive tier
        with pytest.raises(InfeasibleProblemError):
            best_known_tricrit(problem, exhaustive_limit=1)   # pruned tier

    def test_api_reports_infeasible_problem_code(self):
        engine = api.Engine()
        request = api.SolveRequest(
            problem=problem_to_dict(self._infeasible_problem()),
            solver="tricrit-best-of")
        with pytest.raises(ApiError) as info:
            engine.solve(request)
        assert info.value.code == INFEASIBLE_PROBLEM
        assert info.value.http_status == 422
