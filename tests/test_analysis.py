"""Tests for the repo-specific static-analysis toolkit (repro.analysis).

Each REP rule gets a bad/good fixture pair under ``fixtures/analysis/``;
the suppression protocol, the CLI contract and the rule engine itself are
exercised directly; and a self-check asserts the shipped ``src/repro``
tree carries zero unsuppressed findings -- the same invariant ``make
analyze`` and CI enforce.
"""

from __future__ import annotations

import json as jsonlib
from pathlib import Path

import pytest

import repro.analysis as analysis
from repro.analysis import (
    AnalysisError,
    FileContext,
    all_rules,
    analyze_paths,
    render_json,
    render_text,
)
from repro.analysis.__main__ import main
from repro.analysis.engine import module_name_for
from repro.analysis.rules.rep004_registry_bypass import (
    RegistryBypassRule,
    registered_impls,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

#: Rules whose fixtures can be analysed by on-disk path.  REP004 exempts
#: the tests/ tree, so its fixtures are driven through FileContext below.
PATH_DRIVEN_RULES = ["REP001", "REP002", "REP003", "REP005", "REP006"]


def findings_for(filename: str, rule_id: str):
    rules = [r for r in all_rules() if r.rule_id == rule_id]
    assert rules, f"unknown rule {rule_id}"
    return analyze_paths([FIXTURES / filename], rules=rules)


# ----------------------------------------------------------------------
# bad/good fixture pairs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", PATH_DRIVEN_RULES)
def test_bad_fixture_fails(rule_id):
    findings = findings_for(f"{rule_id.lower()}_bad.py", rule_id)
    unsuppressed = [f for f in findings if not f.suppressed]
    assert unsuppressed, f"{rule_id} found nothing in its bad fixture"
    assert all(f.rule == rule_id for f in findings)
    assert all(f.line > 0 and f.hint for f in findings)


@pytest.mark.parametrize("rule_id", PATH_DRIVEN_RULES)
def test_good_fixture_passes(rule_id):
    findings = findings_for(f"{rule_id.lower()}_good.py", rule_id)
    assert findings == [], render_text(findings, include_suppressed=True)


def _rep004_context(filename: str) -> FileContext:
    # A synthetic path outside tests/ so the deliberate tests-tree
    # exemption does not hide the fixture from the rule.
    source = (FIXTURES / filename).read_text(encoding="utf-8")
    return FileContext(Path("somepkg") / filename, source)


def test_rep004_bad_fixture_fails():
    findings = list(RegistryBypassRule().check(_rep004_context("rep004_bad.py")))
    assert findings
    assert all(f.rule == "REP004" for f in findings)
    assert "solve_bicrit_discrete_milp" in findings[0].message


def test_rep004_good_fixture_passes():
    assert list(RegistryBypassRule().check(_rep004_context("rep004_good.py"))) == []


def test_rep004_exempts_test_trees():
    # The same bad fixture analysed at its real path (under tests/) is
    # exempt: tests exercise impls directly on purpose.
    findings = findings_for("rep004_bad.py", "REP004")
    assert findings == []


def test_registry_parse_finds_managed_impls():
    impls = registered_impls()
    assert impls.get("repro.discrete.exact"), impls
    assert "solve_bicrit_discrete_milp" in impls["repro.discrete.exact"]


# ----------------------------------------------------------------------
# suppression protocol
# ----------------------------------------------------------------------
def test_suppressed_fixture_counts_but_does_not_fail():
    findings = analyze_paths([FIXTURES / "suppressed.py"])
    assert findings, "suppression fixture should still produce findings"
    assert all(f.suppressed for f in findings), render_text(
        findings, include_suppressed=True)
    # Trailing-comment, standalone-comment-above and multi-id forms all
    # land at least one suppressed finding each.
    rules_seen = {f.rule for f in findings}
    assert {"REP001", "REP002", "REP006"} <= rules_seen


def test_suppression_requires_matching_rule_id():
    source = "s = {1, 2}\nx = list(s)  # repro: allow[REP006] -- wrong id\n"
    ctx = FileContext(Path("somepkg/mod.py"), source)
    rules = {r.rule_id: r for r in all_rules()}
    findings = list(rules["REP001"].check(ctx))
    assert findings and not findings[0].suppressed


def test_wildcard_suppression():
    source = "s = {1, 2}\nx = list(s)  # repro: allow[*] -- demo code\n"
    ctx = FileContext(Path("somepkg/mod.py"), source)
    rules = {r.rule_id: r for r in all_rules()}
    findings = list(rules["REP001"].check(ctx))
    assert findings and findings[0].suppressed


def test_standalone_comment_stops_at_blank_line():
    source = ("# repro: allow[REP001] -- detached by the blank line\n"
              "\n"
              "s = {1, 2}\n"
              "x = list(s)\n")
    ctx = FileContext(Path("somepkg/mod.py"), source)
    rules = {r.rule_id: r for r in all_rules()}
    findings = list(rules["REP001"].check(ctx))
    assert findings and not findings[0].suppressed


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
def test_module_name_for_maps_package_paths():
    assert module_name_for(Path("src/repro/api/engine.py")) == "repro.api.engine"
    assert module_name_for(Path("src/repro/store/__init__.py")) == "repro.store"
    assert module_name_for(Path("somewhere/fixture_mod.py")) == "fixture_mod"


def test_syntax_error_raises_analysis_error(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    with pytest.raises(AnalysisError):
        analyze_paths([bad])


def test_missing_path_raises_analysis_error():
    with pytest.raises(AnalysisError):
        analyze_paths([FIXTURES / "does_not_exist.py"])


def test_findings_are_stably_ordered():
    findings = analyze_paths([FIXTURES / "rep001_bad.py",
                              FIXTURES / "rep002_bad.py"])
    keys = [(f.path, f.line, f.col, f.rule) for f in findings]
    assert keys == sorted(keys)


def test_render_json_shape():
    findings = analyze_paths([FIXTURES / "rep006_bad.py"])
    payload = jsonlib.loads(render_json(findings))
    assert set(payload) == {"findings", "unsuppressed", "suppressed"}
    assert payload["unsuppressed"] == len(findings)
    first = payload["findings"][0]
    assert set(first) == {"rule", "path", "line", "col", "message", "hint",
                          "suppressed"}


# ----------------------------------------------------------------------
# CLI contract
# ----------------------------------------------------------------------
def test_cli_exit_one_on_findings(capsys):
    assert main([str(FIXTURES / "rep002_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "REP002" in out and "hint:" in out


def test_cli_exit_zero_on_clean(capsys):
    assert main([str(FIXTURES / "rep002_good.py")]) == 0
    assert "0 finding(s), 0 suppressed" in capsys.readouterr().out


def test_cli_exit_zero_when_all_suppressed(capsys):
    assert main([str(FIXTURES / "suppressed.py")]) == 0
    out = capsys.readouterr().out
    assert "[suppressed]" not in out  # hidden without --include-suppressed


def test_cli_include_suppressed_shows_audit_trail(capsys):
    assert main(["--include-suppressed", str(FIXTURES / "suppressed.py")]) == 0
    assert "[suppressed]" in capsys.readouterr().out


def test_cli_json_output(capsys):
    code = main(["--json", str(FIXTURES / "rep003_bad.py")])
    assert code == 1
    payload = jsonlib.loads(capsys.readouterr().out)
    assert payload["unsuppressed"] > 0
    assert all(f["rule"] == "REP003" for f in payload["findings"])


def test_cli_rule_selection(capsys):
    # Only REP006 requested: the REP001 violations in the same file are
    # not reported.
    code = main(["--rules", "REP006", str(FIXTURES / "rep001_bad.py")])
    assert code == 0
    capsys.readouterr()


def test_cli_unknown_rule_is_usage_error(capsys):
    assert main(["--rules", "REP999", str(FIXTURES / "rep001_bad.py")]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "nope.py")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ["REP001", "REP002", "REP003", "REP004", "REP005",
                    "REP006"]:
        assert rule_id in out


# ----------------------------------------------------------------------
# self-check: the shipped tree is clean
# ----------------------------------------------------------------------
def test_shipped_tree_has_zero_unsuppressed_findings():
    pkg_root = Path(analysis.__file__).resolve().parents[1]
    findings = analyze_paths([pkg_root])
    unsuppressed = [f for f in findings if not f.suppressed]
    assert unsuppressed == [], "\n" + render_text(findings)
    # The audit trail of deliberate exceptions stays visible.
    assert any(f.suppressed for f in findings)
