"""Tests of the BI-CRIT and TRI-CRIT problem definitions."""

from __future__ import annotations

import math

import pytest

from repro.core.problems import (
    BiCritProblem,
    InfeasibleProblemError,
    SolveResult,
    TriCritProblem,
)
from repro.core.reliability import ReliabilityModel
from repro.core.schedule import Schedule
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


@pytest.fixture
def chain_problem() -> BiCritProblem:
    graph = generators.chain([2.0, 2.0, 4.0])
    platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
    return BiCritProblem(Mapping.single_processor(graph), platform, deadline=12.0)


class TestBiCritProblem:
    def test_validation(self, chain_problem):
        with pytest.raises(ValueError):
            BiCritProblem(chain_problem.mapping, chain_problem.platform, deadline=0.0)

    def test_mapping_must_fit_platform(self):
        graph = generators.fork(1.0, [1.0, 1.0])
        platform = Platform(2, ContinuousSpeeds(0.1, 1.0))
        mapping = Mapping.one_task_per_processor(graph)  # needs 3 processors
        with pytest.raises(ValueError):
            BiCritProblem(mapping, platform, deadline=5.0)

    def test_min_makespan_and_feasibility(self, chain_problem):
        assert chain_problem.min_makespan() == pytest.approx(8.0)
        assert chain_problem.is_feasible_instance()
        chain_problem.validate()

    def test_infeasible_instance(self):
        graph = generators.chain([10.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, deadline=5.0)
        assert not problem.is_feasible_instance()
        with pytest.raises(InfeasibleProblemError):
            problem.validate()

    def test_energy_bounds_ordering(self, chain_problem):
        lower = chain_problem.energy_lower_bound()
        upper = chain_problem.energy_upper_bound()
        assert 0 < lower <= upper
        # The upper bound is the everything-at-fmax schedule.
        assert upper == pytest.approx(8.0)

    def test_evaluate_feasible_schedule(self, chain_problem):
        schedule = Schedule.uniform_speed(chain_problem.mapping, chain_problem.platform,
                                          8.0 / 12.0)
        report = chain_problem.evaluate(schedule)
        assert report.feasible
        assert report.makespan == pytest.approx(12.0)
        assert report.deadline_slack == pytest.approx(0.0)

    def test_evaluate_infeasible_schedule(self, chain_problem):
        schedule = Schedule.uniform_speed(chain_problem.mapping, chain_problem.platform, 0.5)
        report = chain_problem.evaluate(schedule)
        assert not report.feasible
        assert any(v.kind == "deadline" for v in report.violations)

    def test_accessors(self, chain_problem):
        assert chain_problem.fmin == pytest.approx(0.1)
        assert chain_problem.fmax == pytest.approx(1.0)
        assert chain_problem.graph.num_tasks == 3


class TestTriCritProblem:
    @pytest.fixture
    def tricrit(self) -> TriCritProblem:
        graph = generators.chain([2.0, 2.0, 4.0])
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-3)
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0), reliability_model=model)
        return TriCritProblem(Mapping.single_processor(graph), platform, deadline=16.0)

    def test_reliability_model_defaults_to_platform(self, tricrit):
        assert tricrit.reliability() is tricrit.platform.reliability_model

    def test_reliability_model_override(self, tricrit):
        custom = ReliabilityModel(fmin=0.1, fmax=1.0, frel=0.5)
        problem = TriCritProblem(tricrit.mapping, tricrit.platform, tricrit.deadline,
                                 reliability_model=custom)
        assert problem.reliability().frel == pytest.approx(0.5)

    def test_evaluate_checks_reliability(self, tricrit):
        slow = Schedule.uniform_speed(tricrit.mapping, tricrit.platform, 0.5)
        report = tricrit.evaluate(slow)
        assert not report.feasible
        assert any(v.kind == "reliability" for v in report.violations)
        assert report.min_reliability_margin < 0

    def test_evaluate_reliable_schedule(self, tricrit):
        fast = Schedule.uniform_speed(tricrit.mapping, tricrit.platform, 1.0)
        report = tricrit.evaluate(fast)
        assert report.feasible
        assert report.min_reliability_margin >= 0

    def test_min_makespan_with_reliability(self, tricrit):
        # frel defaults to fmax so the reliable makespan equals the fmax one.
        assert tricrit.min_makespan_with_reliability() == pytest.approx(8.0)

    def test_validate(self, tricrit):
        tricrit.validate()


class TestSolveResult:
    def test_require_schedule_raises_when_missing(self):
        result = SolveResult(schedule=None, energy=math.inf, status="infeasible",
                             solver="test")
        assert not result.feasible
        with pytest.raises(InfeasibleProblemError):
            result.require_schedule()

    def test_feasible_statuses(self):
        assert SolveResult(None, 1.0, "optimal", "t").feasible
        assert SolveResult(None, 1.0, "feasible", "t").feasible
        assert not SolveResult(None, 1.0, "error", "t").feasible
