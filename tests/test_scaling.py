"""Tests of the polynomial-vs-exponential scaling probes."""

from __future__ import annotations

import pytest

from repro.complexity.scaling import (
    ScalingPoint,
    fit_growth_exponent,
    measure_discrete_exact_scaling,
    measure_tricrit_chain_scaling,
    measure_vdd_lp_scaling,
)


class TestProbes:
    def test_vdd_lp_scaling_points(self):
        points = measure_vdd_lp_scaling([3, 6], seed=1)
        assert len(points) == 2
        assert points[0].num_tasks == 3
        # LP size grows linearly with the number of tasks (modes fixed).
        assert points[1].work_units == pytest.approx(2 * points[0].work_units)
        assert all(p.energy > 0 for p in points)

    def test_discrete_exact_scaling_bruteforce(self):
        points = measure_discrete_exact_scaling([3, 5], seed=1, backend="bruteforce",
                                                modes=(0.5, 1.0))
        assert points[0].work_units == pytest.approx(2 ** 3)
        assert points[1].work_units == pytest.approx(2 ** 5)

    def test_tricrit_chain_scaling(self):
        points = measure_tricrit_chain_scaling([3, 4], seed=1)
        assert points[0].work_units == pytest.approx(2 ** 3)
        assert points[1].work_units == pytest.approx(2 ** 4)


class TestGrowthFit:
    def test_exponential_data_identified(self):
        points = [ScalingPoint(n, 0.0, float(2 ** n), 1.0) for n in (4, 6, 8, 10, 12)]
        fit = fit_growth_exponent(points)
        assert fit["exponential_fits_better"]
        assert fit["exponential_rate"] == pytest.approx(0.693, rel=1e-2)

    def test_polynomial_data_identified(self):
        points = [ScalingPoint(n, 0.0, float(n ** 2), 1.0) for n in (4, 8, 16, 32, 64)]
        fit = fit_growth_exponent(points)
        assert not fit["exponential_fits_better"]
        assert fit["polynomial_degree"] == pytest.approx(2.0, rel=1e-6)

    def test_end_to_end_complexity_contrast(self):
        exact = measure_discrete_exact_scaling([3, 4, 5, 6, 7], seed=2,
                                               backend="bruteforce", modes=(0.5, 1.0))
        lp = measure_vdd_lp_scaling([3, 6, 12, 24], seed=2, modes=(0.5, 1.0))
        exact_fit = fit_growth_exponent(exact)
        lp_fit = fit_growth_exponent(lp)
        assert exact_fit["exponential_fits_better"]
        assert not lp_fit["exponential_fits_better"]
        assert lp_fit["polynomial_degree"] < 2.0
