"""Tests of the Platform bundle (processors + speed/energy/reliability models)."""

from __future__ import annotations

import pytest

from repro.core.energy import EnergyModel
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds, DiscreteSpeeds, VddHoppingSpeeds
from repro.platform.platform import Platform


class TestPlatform:
    def test_defaults(self):
        p = Platform(4)
        assert p.num_processors == 4
        assert isinstance(p.speed_model, ContinuousSpeeds)
        assert p.fmin == pytest.approx(0.1)
        assert p.fmax == pytest.approx(1.0)
        assert p.energy_model.exponent == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Platform(0)

    def test_reliability_default_built_lazily(self):
        p = Platform(2, ContinuousSpeeds(0.2, 2.0))
        model = p.reliability()
        assert isinstance(model, ReliabilityModel)
        assert model.fmin == pytest.approx(0.2)
        assert model.fmax == pytest.approx(2.0)

    def test_explicit_reliability_model_returned(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-3)
        p = Platform(2, reliability_model=model)
        assert p.reliability() is model

    def test_with_speed_model_preserves_other_fields(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0)
        energy = EnergyModel(exponent=2.5)
        p = Platform(3, ContinuousSpeeds(0.1, 1.0), energy, model)
        q = p.with_speed_model(DiscreteSpeeds([0.5, 1.0]))
        assert q.num_processors == 3
        assert q.energy_model is energy
        assert q.reliability_model is model
        assert isinstance(q.speed_model, DiscreteSpeeds)

    def test_continuous_twin(self):
        p = Platform(2, VddHoppingSpeeds([0.2, 0.6, 1.0]))
        twin = p.continuous_twin()
        assert isinstance(twin.speed_model, ContinuousSpeeds)
        assert twin.fmin == pytest.approx(0.2)
        assert twin.fmax == pytest.approx(1.0)
        assert twin.num_processors == 2
