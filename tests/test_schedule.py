"""Tests of the schedule representation, feasibility checks and accounting."""

from __future__ import annotations

import pytest

from repro.core.reliability import ReliabilityModel
from repro.core.schedule import Execution, Schedule, TaskDecision
from repro.core.speeds import ContinuousSpeeds, DiscreteSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


class TestExecution:
    def test_at_speed(self):
        e = Execution.at_speed(4.0, 2.0)
        assert e.duration == pytest.approx(2.0)
        assert e.work == pytest.approx(4.0)
        assert e.mean_speed() == pytest.approx(2.0)
        assert e.is_constant_speed

    def test_zero_weight(self):
        e = Execution.at_speed(0.0, 1.0)
        assert e.duration == 0.0
        assert e.work == 0.0

    def test_energy_cube_law(self):
        e = Execution.at_speed(4.0, 2.0)
        # E = f^3 * t = 8 * 2 = 16 = w * f^2.
        assert e.energy() == pytest.approx(16.0)

    def test_multi_interval(self):
        e = Execution.from_intervals([(1.0, 1.0), (2.0, 0.5)])
        assert e.work == pytest.approx(2.0)
        assert e.duration == pytest.approx(1.5)
        assert e.mean_speed() == pytest.approx(2.0 / 1.5)
        assert not e.is_constant_speed
        assert e.speeds == (1.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Execution(intervals=())
        with pytest.raises(ValueError):
            Execution.from_intervals([(0.0, 1.0)])
        with pytest.raises(ValueError):
            Execution.from_intervals([(1.0, -1.0)])
        with pytest.raises(ValueError):
            Execution.at_speed(1.0, 0.0)

    def test_failure_probability(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-3)
        e = Execution.at_speed(5.0, 0.5)
        expected = model.failure_probability(5.0, 0.5)
        assert e.failure_probability(model) == pytest.approx(expected)


class TestTaskDecision:
    def test_single(self):
        d = TaskDecision.single("a", 4.0, 2.0)
        assert not d.is_reexecuted
        assert d.worst_case_duration == pytest.approx(2.0)
        assert d.energy() == pytest.approx(16.0)
        assert d.speeds() == (2.0,)

    def test_reexecuted(self):
        d = TaskDecision.reexecuted("a", 4.0, 1.0, 2.0)
        assert d.is_reexecuted
        assert d.worst_case_duration == pytest.approx(4.0 + 2.0)
        assert d.energy() == pytest.approx(4.0 * 1.0 + 4.0 * 4.0)
        assert d.speeds() == (1.0, 2.0)

    def test_reliability_combines_attempts(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-2)
        single = TaskDecision.single("a", 3.0, 0.5)
        double = TaskDecision.reexecuted("a", 3.0, 0.5, 0.5)
        assert double.reliability(model) > single.reliability(model)

    def test_at_most_two_executions(self):
        e = Execution.at_speed(1.0, 1.0)
        with pytest.raises(ValueError):
            TaskDecision("a", (e, e, e))
        with pytest.raises(ValueError):
            TaskDecision("a", ())


class TestSchedule:
    @pytest.fixture
    def chain_setup(self):
        graph = generators.chain([2.0, 4.0, 2.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 2.0))
        mapping = Mapping.single_processor(graph)
        return graph, platform, mapping

    def test_uniform_speed_schedule(self, chain_setup):
        graph, platform, mapping = chain_setup
        s = Schedule.uniform_speed(mapping, platform, 1.0)
        assert s.makespan() == pytest.approx(8.0)
        assert s.energy() == pytest.approx(8.0)  # w * 1^2 summed
        assert s.num_reexecuted() == 0

    def test_from_speeds(self, chain_setup):
        graph, platform, mapping = chain_setup
        s = Schedule.from_speeds(mapping, platform, {"T0": 2.0, "T1": 1.0, "T2": 0.5})
        assert s.makespan() == pytest.approx(1.0 + 4.0 + 4.0)
        assert s.energy() == pytest.approx(2 * 4 + 4 * 1 + 2 * 0.25)

    def test_missing_decision_rejected(self, chain_setup):
        graph, platform, mapping = chain_setup
        decisions = {"T0": TaskDecision.single("T0", 2.0, 1.0)}
        with pytest.raises(ValueError, match="missing"):
            Schedule(mapping, platform, decisions)

    def test_extra_decision_rejected(self, chain_setup):
        graph, platform, mapping = chain_setup
        decisions = {t: TaskDecision.single(t, graph.weight(t), 1.0) for t in graph.tasks()}
        decisions["zzz"] = TaskDecision.single("zzz", 1.0, 1.0)
        with pytest.raises(ValueError, match="unknown"):
            Schedule(mapping, platform, decisions)

    def test_parallel_makespan_uses_critical_path(self):
        graph = generators.fork(1.0, [2.0, 4.0])
        platform = Platform(4, ContinuousSpeeds(0.1, 2.0))
        mapping = Mapping.one_task_per_processor(graph)
        s = Schedule.uniform_speed(mapping, platform, 1.0)
        assert s.makespan() == pytest.approx(5.0)

    def test_same_processor_serialisation_extends_makespan(self):
        graph = generators.fork(1.0, [2.0, 4.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 2.0))
        mapping = Mapping.single_processor(graph)
        s = Schedule.uniform_speed(mapping, platform, 1.0)
        assert s.makespan() == pytest.approx(7.0)

    def test_reexecution_counts_in_makespan_and_energy(self, chain_setup):
        graph, platform, mapping = chain_setup
        decisions = {t: TaskDecision.single(t, graph.weight(t), 1.0) for t in graph.tasks()}
        decisions["T1"] = TaskDecision.reexecuted("T1", 4.0, 1.0, 1.0)
        s = Schedule(mapping, platform, decisions)
        assert s.makespan() == pytest.approx(12.0)
        assert s.energy() == pytest.approx(2.0 + 8.0 + 2.0)
        assert s.num_reexecuted() == 1

    def test_violations_deadline(self, chain_setup):
        graph, platform, mapping = chain_setup
        s = Schedule.uniform_speed(mapping, platform, 1.0)
        assert s.is_feasible(deadline=8.0)
        violations = s.violations(deadline=7.0)
        assert any(v.kind == "deadline" for v in violations)

    def test_violations_speed_bounds(self, chain_setup):
        graph, platform, mapping = chain_setup
        s = Schedule.uniform_speed(mapping, platform, 5.0)  # above fmax=2
        assert any(v.kind == "speed" for v in s.violations())

    def test_violations_switching_not_allowed_on_discrete(self):
        graph = generators.chain([2.0])
        platform = Platform(1, DiscreteSpeeds([0.5, 1.0]))
        mapping = Mapping.single_processor(graph)
        execution = Execution.from_intervals([(0.5, 2.0), (1.0, 1.0)])
        s = Schedule(mapping, platform, {"T0": TaskDecision("T0", (execution,))})
        kinds = {v.kind for v in s.violations()}
        assert "switching" in kinds

    def test_switching_allowed_on_vdd(self):
        graph = generators.chain([2.0])
        platform = Platform(1, VddHoppingSpeeds([0.5, 1.0]))
        mapping = Mapping.single_processor(graph)
        execution = Execution.from_intervals([(0.5, 2.0), (1.0, 1.0)])
        s = Schedule(mapping, platform, {"T0": TaskDecision("T0", (execution,))})
        assert not any(v.kind == "switching" for v in s.violations())

    def test_violations_work_conservation(self, chain_setup):
        graph, platform, mapping = chain_setup
        decisions = {t: TaskDecision.single(t, graph.weight(t), 1.0) for t in graph.tasks()}
        # Wrong amount of work for T0 (weight 2, execution does 1).
        decisions["T0"] = TaskDecision("T0", (Execution.from_intervals([(1.0, 1.0)]),))
        s = Schedule(mapping, platform, decisions)
        assert any(v.kind == "work" for v in s.violations())

    def test_reliability_violations(self, chain_setup):
        graph, platform, mapping = chain_setup
        model = ReliabilityModel(fmin=0.1, fmax=2.0, lambda0=1e-3)
        slow = Schedule.uniform_speed(mapping, platform, 0.5)
        violations = slow.violations(check_reliability=True, reliability_model=model)
        assert any(v.kind == "reliability" for v in violations)
        fast = Schedule.uniform_speed(mapping, platform, 2.0)
        assert not fast.violations(check_reliability=True, reliability_model=model)

    def test_summary_and_speed_assignment(self, chain_setup):
        graph, platform, mapping = chain_setup
        s = Schedule.uniform_speed(mapping, platform, 1.0)
        summary = s.summary(deadline=10.0)
        assert summary["energy"] == pytest.approx(8.0)
        assert summary["deadline_slack"] == pytest.approx(2.0)
        assert s.speed_assignment()["T0"] == (1.0,)

    def test_energy_with_static(self, chain_setup):
        graph, _, mapping = chain_setup
        from repro.core.energy import EnergyModel

        platform = Platform(1, ContinuousSpeeds(0.1, 2.0),
                            EnergyModel(static_power=0.5))
        s = Schedule.uniform_speed(mapping, platform, 1.0)
        assert s.energy_with_static() == pytest.approx(8.0 + 0.5 * 8.0)
