"""Tests for the campaign orchestration subsystem (registry, cache, runner, CLI)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    ResultCache,
    all_scenarios_campaign,
    expand_campaign,
    expand_entry,
    expand_grid,
    get_scenario,
    instance_key,
    iter_scenarios,
    run_campaign,
    scenario_names,
)
from repro.campaign.cli import main as cli_main, parse_param, render_result
from repro.core.rng import resolve_seed, spawn_child_seeds

# Cheap scenarios used when a test only needs "some" instances.  All three
# are flagged deterministic in the registry (E5 would not qualify: its
# scaling probes record wall-clock seconds).
FAST = ("e1-fork-closed-form", "e2-series-parallel", "e7-tricrit-chain")


def test_fast_scenarios_are_flagged_deterministic():
    assert all(get_scenario(name).deterministic for name in FAST)
    assert not get_scenario("e5-np-hardness").deterministic


def smoke_instances(names=FAST):
    return [get_scenario(name).instance(smoke=True) for name in names]


# ----------------------------------------------------------------------
# seed plumbing
# ----------------------------------------------------------------------
class TestRngHelpers:
    def test_resolve_seed_none_uses_default(self):
        assert resolve_seed(None, 7) == 7

    def test_resolve_seed_int_passthrough(self):
        assert resolve_seed(123, 7) == 123
        assert resolve_seed(np.int64(9), 7) == 9

    def test_resolve_seed_generator_is_deterministic(self):
        a = resolve_seed(np.random.default_rng(0), 7)
        b = resolve_seed(np.random.default_rng(0), 7)
        assert a == b
        assert isinstance(a, int)

    def test_resolve_seed_rejects_junk(self):
        with pytest.raises(TypeError):
            resolve_seed("7", 7)

    def test_spawn_child_seeds_deterministic_and_distinct(self):
        a = spawn_child_seeds(42, 8)
        b = spawn_child_seeds(42, 8)
        assert a == b
        assert len(set(a)) == 8
        assert spawn_child_seeds(43, 8) != a

    def test_run_star_accepts_generator_and_none(self):
        from repro.experiments import run_fork_closed_form_experiment

        default = run_fork_closed_form_experiment(sizes=(2,), slacks=(1.5,))
        explicit = run_fork_closed_form_experiment(sizes=(2,), slacks=(1.5,),
                                                   seed=None)
        assert default == explicit
        gen_a = run_fork_closed_form_experiment(
            sizes=(2,), slacks=(1.5,), seed=np.random.default_rng(5))
        gen_b = run_fork_closed_form_experiment(
            sizes=(2,), slacks=(1.5,), seed=np.random.default_rng(5))
        assert gen_a == gen_b


# ----------------------------------------------------------------------
# registry completeness
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_experiments_registered(self):
        experiments = [spec.experiment for spec in iter_scenarios()]
        assert experiments == [f"E{i}" for i in range(1, 14)]

    def test_lookup_by_name_and_experiment_id(self):
        assert get_scenario("e7-tricrit-chain").experiment == "E7"
        assert get_scenario("e7").name == "e7-tricrit-chain"
        assert get_scenario("E7").name == "e7-tricrit-chain"
        with pytest.raises(KeyError):
            get_scenario("e99")

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            get_scenario("e1").params({"bogus": 1})

    @pytest.mark.parametrize("name", [spec.name for spec in iter_scenarios()])
    def test_every_scenario_runs_at_smoke_size(self, name):
        result = get_scenario(name).run(smoke=True)
        if isinstance(result, dict):        # E5 returns sectioned output
            assert result["reduction_rows"]
        else:
            assert isinstance(result, list) and result
            assert all(isinstance(row, dict) for row in result)


# ----------------------------------------------------------------------
# sweep expansion
# ----------------------------------------------------------------------
class TestSweep:
    def test_expand_grid_cartesian_and_empty(self):
        assert expand_grid(None) == [{}]
        combos = expand_grid({"b": [1, 2], "a": ["x"]})
        assert combos == [{"a": "x", "b": 1}, {"a": "x", "b": 2}]

    def test_expand_entry_grid_times_seeds(self):
        entry = {"scenario": "e1-fork-closed-form",
                 "grid": {"slacks": [[1.5], [2.0]]},
                 "seeds": 3, "base_seed": 11}
        instances = expand_entry(entry, smoke=True)
        assert len(instances) == 6
        seeds = {inst.params["seed"] for inst in instances}
        assert seeds == set(spawn_child_seeds(11, 3))
        # Deterministic: expanding again gives the same instances.
        assert expand_entry(entry, smoke=True) == instances

    def test_expand_entry_rejects_unknown_keys(self):
        with pytest.raises(KeyError, match="unknown campaign entry"):
            expand_entry({"scenario": "e1", "prams": {}})

    def test_all_campaign_covers_registry(self):
        instances = expand_campaign(all_scenarios_campaign(), smoke=True)
        assert [inst.scenario for inst in instances] == scenario_names()


# ----------------------------------------------------------------------
# the content-addressed cache
# ----------------------------------------------------------------------
class TestCache:
    def test_key_stability_and_sensitivity(self):
        base = {"sizes": (2, 4), "slacks": (1.5,), "seed": 7}
        key = instance_key("e1-fork-closed-form", base)
        assert key == instance_key("e1-fork-closed-form", dict(base))
        # Tuple vs list spelling of the same config hashes identically.
        assert key == instance_key("e1-fork-closed-form",
                                   {"sizes": [2, 4], "slacks": [1.5], "seed": 7})
        # Any changed parameter, or another scenario, is a different key.
        assert key != instance_key("e1-fork-closed-form", {**base, "seed": 8})
        assert key != instance_key("e2-series-parallel", base)

    def test_same_config_hits_changed_param_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_campaign(smoke_instances(("e1-fork-closed-form",)),
                             cache=cache)
        assert (first.hits, first.misses) == (0, 1)
        again = run_campaign(smoke_instances(("e1-fork-closed-form",)),
                             cache=cache)
        assert (again.hits, again.misses) == (1, 0)
        assert again.results[0].record["result"] == first.results[0].record["result"]
        changed = run_campaign(
            [get_scenario("e1-fork-closed-form").instance({"slacks": (2.5,)},
                                                          smoke=True)],
            cache=cache)
        assert (changed.hits, changed.misses) == (0, 1)

    def test_refresh_reexecutes_and_no_cache_bypasses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        instances = smoke_instances(("e2-series-parallel",))
        run_campaign(instances, cache=cache)
        refreshed = run_campaign(instances, cache=cache, refresh=True)
        assert (refreshed.hits, refreshed.misses) == (0, 1)
        bypassed = run_campaign(instances, cache=cache, use_cache=False)
        assert (bypassed.hits, bypassed.misses) == (0, 1)
        assert len(cache) == 1

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        instances = smoke_instances(("e1-fork-closed-form",))
        outcome = run_campaign(instances, cache=cache)
        cache.path_for(outcome.results[0].key).write_text("{not json")
        rerun = run_campaign(instances, cache=cache)
        assert (rerun.hits, rerun.misses) == (0, 1)

    def test_error_is_reported_not_raised(self, tmp_path):
        bad = get_scenario("e1-fork-closed-form").instance(smoke=True)
        broken = type(bad)(scenario=bad.scenario,
                           params={**bad.params, "seed": "bogus"},
                           label="broken")
        outcome = run_campaign([broken], cache=ResultCache(tmp_path / "cache"))
        assert outcome.errors == 1
        assert not outcome.results[0].ok
        assert outcome.results[0].record is None


# ----------------------------------------------------------------------
# parallel execution determinism
# ----------------------------------------------------------------------
class TestParallelRunner:
    def test_jobs_1_and_jobs_4_produce_identical_records(self, tmp_path):
        serial = run_campaign(smoke_instances(), jobs=1,
                              cache=ResultCache(tmp_path / "serial"))
        parallel = run_campaign(smoke_instances(), jobs=4,
                                cache=ResultCache(tmp_path / "parallel"))
        assert serial.errors == 0 and parallel.errors == 0
        for left, right in zip(serial.results, parallel.results):
            assert left.key == right.key
            assert left.record["result"] == right.record["result"]

    def test_batched_engine_produces_byte_identical_result_payloads(self, tmp_path):
        """jobs=1, jobs=4 and the in-process batched path must agree exactly.

        The comparison is on the canonical JSON bytes of the cached
        ``result`` payloads: instance seeds are fixed at expansion time and
        every deterministic scenario's result is a pure function of its
        parameters, so execution placement (serial / pool / in-process
        batched) must not leak into the records.
        """
        names = FAST + ("e13-solver-ablation",)
        runs = {
            "jobs1": run_campaign(smoke_instances(names), jobs=1,
                                  cache=ResultCache(tmp_path / "jobs1")),
            "jobs4": run_campaign(smoke_instances(names), jobs=4,
                                  cache=ResultCache(tmp_path / "jobs4")),
            "batched": run_campaign(smoke_instances(names), jobs=4,
                                    engine="batch",
                                    cache=ResultCache(tmp_path / "batched")),
        }
        assert all(outcome.errors == 0 for outcome in runs.values())
        reference = [
            json.dumps(r.record["result"], sort_keys=True).encode()
            for r in runs["jobs1"].results
        ]
        for label in ("jobs4", "batched"):
            payloads = [
                json.dumps(r.record["result"], sort_keys=True).encode()
                for r in runs[label].results
            ]
            assert payloads == reference, f"{label} diverged from jobs=1"
        # The batched run must also hit the same cache keys (same params):
        # e13's default engine is already "batch", so the override is a
        # no-op on the key.
        for left, right in zip(runs["jobs1"].results, runs["batched"].results):
            assert left.key == right.key

    def test_engine_override_rejects_unknown_and_skips_engineless(self, tmp_path):
        with pytest.raises(ValueError):
            run_campaign(smoke_instances(), engine="warp",
                         cache=ResultCache(tmp_path / "x"))
        # e1 takes no engine parameter: the scalar override must not add one
        # (which would change its cache key).
        outcome = run_campaign(smoke_instances(("e1-fork-closed-form",)),
                               engine="scalar",
                               cache=ResultCache(tmp_path / "scalar"))
        assert outcome.errors == 0
        assert "engine" not in outcome.results[0].record["params"]

    def test_progress_lines_stream_per_instance(self, tmp_path):
        lines = []
        run_campaign(smoke_instances(), jobs=1,
                     cache=ResultCache(tmp_path / "cache"),
                     progress=lines.append)
        assert len(lines) == len(FAST)
        assert all("[" in line for line in lines)

    def test_jobs_env_fallback(self, monkeypatch):
        from repro.campaign import resolve_jobs

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2
        with pytest.raises(ValueError):
            resolve_jobs(0)


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_parse_param(self):
        assert parse_param("sizes=2,4") == ("sizes", (2, 4))
        assert parse_param("slack=1.5") == ("slack", 1.5)
        assert parse_param("engine=batch") == ("engine", "batch")
        assert parse_param("frel=none") == ("frel", None)
        assert parse_param("include_dag=false") == ("include_dag", False)

    def test_render_result_rows_and_sections(self):
        table = render_result([{"a": 1, "b": 2.5}], title="T")
        assert "T" in table and "a" in table and "2.5" in table
        sections = render_result({"rows": [{"x": 1}], "fit": 2.0})
        assert "[rows]" in sections and "fit: 2" in sections

    def test_unknown_scenario_is_a_clean_error(self, capsys):
        assert cli_main(["run", "e99"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "Traceback" not in err

    def test_list_names(self, capsys):
        assert cli_main(["list", "--names"]) == 0
        out = capsys.readouterr().out.split()
        assert out == scenario_names()

    def test_run_caches_and_reports(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["run", "e1", "--smoke", "--cache-dir", cache_dir]) == 0
        assert "ran in" in capsys.readouterr().out
        assert cli_main(["run", "e1", "--smoke", "--cache-dir", cache_dir]) == 0
        assert "cached" in capsys.readouterr().out
        assert cli_main(["report", "e1", "--cache-dir", cache_dir]) == 0
        assert "formula_energy" in capsys.readouterr().out

    def test_run_json_record_round_trips(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["run", "e1", "--smoke", "--json",
                         "--cache-dir", cache_dir]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["scenario"] == "e1-fork-closed-form"
        assert record["result"]

    def test_campaign_file_with_param_override(self, tmp_path, capsys):
        campaign = tmp_path / "campaign.json"
        campaign.write_text(json.dumps({
            "name": "mini",
            "entries": [{"scenario": "e1-fork-closed-form",
                         "params": {"sizes": [2]}, "seeds": 2}],
        }))
        cache_dir = str(tmp_path / "cache")
        assert cli_main(["campaign", str(campaign), "--smoke",
                         "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 instances, 0/2 cache hits" in out
        assert cli_main(["campaign", str(campaign), "--smoke",
                         "--cache-dir", cache_dir]) == 0
        assert "2/2 cache hits" in capsys.readouterr().out


# ----------------------------------------------------------------------
# cache robustness: quarantine and concurrent writers
# ----------------------------------------------------------------------
def _hammer_cache(root, key, payload, rounds):
    """Worker for the concurrent-writer test (module-level for pickling)."""
    from repro.campaign import ResultCache

    cache = ResultCache(root)
    for _ in range(rounds):
        cache.put(key, payload)


class TestCacheRobustness:
    def test_corrupt_entry_is_quarantined_not_reread(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        outcome = run_campaign(smoke_instances(("e1-fork-closed-form",)),
                               cache=cache)
        key = outcome.results[0].key
        path = cache.path_for(key)
        path.write_text("{torn write", encoding="utf-8")

        assert cache.get(key) is None
        # Quarantined aside, preserved for inspection, out of the *.json set.
        assert not path.exists()
        corrupt = path.with_suffix(path.suffix + ".corrupt")
        assert corrupt.read_text(encoding="utf-8") == "{torn write"
        assert len(cache) == 0
        assert list(cache.records()) == []
        # Subsequent reads are plain misses (nothing left to quarantine)...
        assert cache.get(key) is None
        # ...and a recomputed record is not shadowed by the broken file.
        rerun = run_campaign(smoke_instances(("e1-fork-closed-form",)),
                             cache=cache)
        assert rerun.misses == 1
        assert cache.get(key) is not None

    def test_records_iteration_quarantines_corrupt_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_campaign(smoke_instances(("e1-fork-closed-form",)), cache=cache)
        bad = cache.path_for("0" * 64)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_bytes(b"\xff\xfe not json")
        good = list(cache.records())
        assert len(good) == 1
        assert not bad.exists()
        assert bad.with_suffix(".json.corrupt").exists()

    def test_concurrent_writers_never_leave_a_torn_record(self, tmp_path):
        import multiprocessing

        root = tmp_path / "cache"
        key = "f" * 64
        payloads = [{"writer": n, "blob": [n] * 512} for n in (1, 2)]
        procs = [multiprocessing.Process(target=_hammer_cache,
                                         args=(str(root), key, payload, 200))
                 for payload in payloads]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        # tmp.replace() is atomic: whatever interleaving happened, the final
        # file is one writer's payload in full (envelope checksum intact),
        # and no temp files survive.
        survivor = ResultCache(root)
        assert survivor.get(key) in payloads
        raw = json.loads(survivor.path_for(key).read_text())
        assert raw["payload"] in payloads
        assert survivor.store.verify() == {"checked": 1, "ok": 1,
                                           "quarantined": 0}
        assert list(root.rglob("*.tmp-*")) == []


# ----------------------------------------------------------------------
# structured failures and the abort threshold
# ----------------------------------------------------------------------
def broken_instance(label="broken"):
    good = get_scenario("e1-fork-closed-form").instance(smoke=True)
    return type(good)(scenario=good.scenario,
                      params={**good.params, "seed": "bogus"},
                      label=label)


class TestStructuredFailures:
    def test_failure_record_carries_type_message_traceback(self, tmp_path):
        outcome = run_campaign([broken_instance()],
                               cache=ResultCache(tmp_path / "cache"))
        assert outcome.errors == 1
        failed = outcome.failures[0]
        failure = failed.failure
        assert failure["error_type"] == "TypeError"
        assert failure["message"]
        assert "Traceback" in failure["traceback"]
        assert failure["attempts"] == 1
        # The flat error string stays the human-readable summary.
        assert failed.error.startswith("TypeError: ")

    def test_parallel_failures_are_structured_too(self, tmp_path):
        outcome = run_campaign([broken_instance()], jobs=2,
                               cache=ResultCache(tmp_path / "cache"))
        assert outcome.errors == 1
        assert outcome.failures[0].failure["error_type"] == "TypeError"

    def test_max_failures_aborts_serial_run(self, tmp_path):
        grid = [broken_instance("b1"), broken_instance("b2"),
                *smoke_instances(("e1-fork-closed-form",))]
        outcome = run_campaign(grid, max_failures=0,
                               cache=ResultCache(tmp_path / "cache"))
        assert outcome.aborted is True
        assert outcome.errors == 1
        assert outcome.skipped == 2
        assert "ABORTED" in outcome.summary()

    def test_max_failures_none_never_aborts(self, tmp_path):
        grid = [broken_instance("b1"), broken_instance("b2")]
        outcome = run_campaign(grid, cache=ResultCache(tmp_path / "cache"))
        assert outcome.aborted is False
        assert outcome.errors == 2 and outcome.skipped == 0

    def test_cli_campaign_exits_nonzero_on_failure_and_abort(self, tmp_path,
                                                            capsys):
        campaign = tmp_path / "campaign.json"
        campaign.write_text(json.dumps({
            "name": "failing",
            "entries": [
                {"scenario": "e1-fork-closed-form",
                 "params": {"seed": "bogus"}},
                {"scenario": "e1-fork-closed-form"},
            ],
        }))
        assert cli_main(["campaign", str(campaign), "--smoke",
                         "--cache-dir", str(tmp_path / "cache1")]) == 1
        capsys.readouterr()
        # Fresh cache: the failure precedes uncomputed work, so the
        # threshold both aborts and skips (and still exits nonzero).
        assert cli_main(["campaign", str(campaign), "--smoke",
                         "--max-failures", "0",
                         "--cache-dir", str(tmp_path / "cache2")]) == 1
        assert "ABORTED" in capsys.readouterr().out
