"""Tests of the exact DISCRETE/INCREMENTAL solvers (MILP and brute force)."""

from __future__ import annotations

import pytest

from repro.core.problems import BiCritProblem
from repro.core.speeds import ContinuousSpeeds, DiscreteSpeeds, IncrementalSpeeds
from repro.dag import generators
from repro.discrete.exact import (
    solve_bicrit_discrete_bruteforce,
    solve_bicrit_discrete_milp,
)
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform

MODES = (0.25, 0.5, 0.75, 1.0)


def chain_problem(weights, slack, modes=MODES) -> BiCritProblem:
    graph = generators.chain(weights)
    platform = Platform(1, DiscreteSpeeds(modes))
    deadline = slack * graph.total_weight() / platform.fmax
    return BiCritProblem(Mapping.single_processor(graph), platform, deadline)


class TestBruteforce:
    def test_single_task_picks_slowest_feasible_mode(self):
        problem = chain_problem([1.0], 2.0)  # speed 0.5 exactly feasible
        result = solve_bicrit_discrete_bruteforce(problem)
        schedule = result.require_schedule()
        assert schedule.decisions["T0"].speeds()[0] == pytest.approx(0.5)

    def test_counts_assignments(self):
        problem = chain_problem([1.0, 1.0, 1.0], 1.5)
        result = solve_bicrit_discrete_bruteforce(problem)
        assert result.metadata["assignments_evaluated"] == len(MODES) ** 3

    def test_infeasible(self):
        problem = chain_problem([4.0, 4.0], 0.9)
        assert solve_bicrit_discrete_bruteforce(problem).status == "infeasible"

    def test_guard_on_large_instances(self):
        problem = chain_problem([1.0] * 12, 1.5)
        with pytest.raises(ValueError):
            solve_bicrit_discrete_bruteforce(problem, max_assignments=1000)

    def test_requires_discrete_platform(self):
        graph = generators.chain([1.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, 10.0)
        with pytest.raises(TypeError):
            solve_bicrit_discrete_bruteforce(problem)


class TestMilp:
    @pytest.mark.parametrize("backend", ["scipy", "bnb"])
    def test_matches_bruteforce_on_chains(self, backend):
        for seed in range(3):
            weights = list(generators.random_weights(4, seed=seed, low=1.0, high=3.0))
            problem = chain_problem(weights, 1.6)
            milp = solve_bicrit_discrete_milp(problem, backend=backend)
            brute = solve_bicrit_discrete_bruteforce(problem)
            assert milp.energy == pytest.approx(brute.energy, rel=1e-6)

    def test_matches_bruteforce_on_mapped_dag(self):
        graph = generators.random_layered_dag(3, 2, seed=5)
        platform = Platform(2, DiscreteSpeeds(MODES))
        schedule = critical_path_mapping(graph, 2, fmax=1.0)
        problem = BiCritProblem(schedule.mapping, platform, 1.5 * schedule.makespan)
        milp = solve_bicrit_discrete_milp(problem)
        brute = solve_bicrit_discrete_bruteforce(problem)
        assert milp.energy == pytest.approx(brute.energy, rel=1e-6)

    def test_schedule_feasible_and_single_mode_per_task(self):
        problem = chain_problem([1.0, 2.0, 1.5], 1.7)
        result = solve_bicrit_discrete_milp(problem)
        schedule = result.require_schedule()
        assert schedule.is_feasible(problem.deadline, deadline_tol=1e-6)
        for decision in schedule.decisions.values():
            assert len(decision.speeds()) == 1
            assert problem.platform.speed_model.is_admissible(decision.speeds()[0])

    def test_incremental_platform_accepted(self):
        graph = generators.chain([1.0, 1.0])
        platform = Platform(1, IncrementalSpeeds(0.2, 1.0, 0.2))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, 4.0)
        result = solve_bicrit_discrete_milp(problem)
        assert result.feasible

    def test_bnb_reports_nodes(self):
        problem = chain_problem([1.0, 2.0, 1.0], 1.5)
        result = solve_bicrit_discrete_milp(problem, backend="bnb")
        assert result.metadata["nodes_explored"] >= 1

    def test_infeasible(self):
        problem = chain_problem([4.0, 4.0], 0.9)
        assert solve_bicrit_discrete_milp(problem).status == "infeasible"

    def test_unknown_backend(self):
        problem = chain_problem([1.0], 1.5)
        with pytest.raises(ValueError):
            solve_bicrit_discrete_milp(problem, backend="bogus")

    def test_discrete_never_beats_continuous(self):
        from repro.continuous.bicrit import solve_bicrit_continuous

        for slack in (1.2, 1.8):
            problem = chain_problem([1.0, 2.0, 3.0], slack)
            discrete = solve_bicrit_discrete_milp(problem)
            continuous = solve_bicrit_continuous(BiCritProblem(
                problem.mapping,
                Platform(1, ContinuousSpeeds(0.25, 1.0)),
                problem.deadline,
            ))
            assert discrete.energy >= continuous.energy - 1e-9
