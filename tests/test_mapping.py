"""Tests of task-to-processor mappings and the augmented graph."""

from __future__ import annotations

import pytest

from repro.dag import generators
from repro.dag.taskgraph import TaskGraph
from repro.platform.mapping import InvalidMappingError, Mapping


@pytest.fixture
def diamond() -> TaskGraph:
    return TaskGraph(
        {"s": 1.0, "l": 2.0, "r": 3.0, "t": 1.0},
        [("s", "l"), ("s", "r"), ("l", "t"), ("r", "t")],
    )


class TestConstruction:
    def test_single_processor(self, diamond):
        m = Mapping.single_processor(diamond)
        assert m.num_processors == 1
        assert set(m.tasks_on(0)) == set(diamond.tasks())
        assert m.is_single_processor()

    def test_one_task_per_processor(self, diamond):
        m = Mapping.one_task_per_processor(diamond)
        assert m.num_processors == 4
        assert all(len(m.tasks_on(k)) == 1 for k in range(4))
        assert not m.is_single_processor()

    def test_from_processor_of(self, diamond):
        m = Mapping.from_processor_of(diamond, {"s": 0, "l": 0, "r": 1, "t": 0})
        assert m.processor_of("r") == 1
        assert m.tasks_on(0) == ("s", "l", "t")

    def test_missing_task_rejected(self, diamond):
        with pytest.raises(InvalidMappingError, match="not mapped"):
            Mapping([["s", "l", "r"]], diamond)

    def test_duplicate_task_rejected(self, diamond):
        with pytest.raises(InvalidMappingError, match="twice"):
            Mapping([["s", "l", "r", "t"], ["s"]], diamond)

    def test_unknown_task_rejected(self, diamond):
        with pytest.raises(InvalidMappingError, match="not in the graph"):
            Mapping([["s", "l", "r", "t", "zzz"]], diamond)

    def test_order_conflicting_with_precedence_rejected(self, diamond):
        # Putting t before s on the same processor creates a cycle.
        with pytest.raises(InvalidMappingError, match="conflict"):
            Mapping([["t", "s", "l", "r"]], diamond)

    def test_from_processor_of_validation(self, diamond):
        with pytest.raises(InvalidMappingError):
            Mapping.from_processor_of(diamond, {"s": 0, "l": 0, "r": 5, "t": 0},
                                      num_processors=2)
        with pytest.raises(InvalidMappingError):
            Mapping.from_processor_of(diamond, {"s": 0})


class TestDerivedStructures:
    def test_augmented_graph_adds_processor_edges(self, diamond):
        m = Mapping([["s", "l", "t"], ["r"]], diamond)
        augmented = m.augmented_graph()
        assert set(diamond.edges()) <= set(augmented.edges())
        assert ("l", "t") in augmented.edges()
        # l and t are consecutive on processor 0, s->l already a precedence edge.
        assert augmented.num_edges == diamond.num_edges  # no *new* edges here

    def test_augmented_graph_with_new_edges(self):
        g = TaskGraph({"a": 1.0, "b": 2.0, "c": 3.0})  # independent tasks
        m = Mapping([["a", "b"], ["c"]], g)
        augmented = m.augmented_graph()
        assert ("a", "b") in augmented.edges()
        assert augmented.num_edges == 1

    def test_processor_loads(self, diamond):
        m = Mapping([["s", "l", "t"], ["r"]], diamond)
        assert m.processor_loads() == [pytest.approx(4.0), pytest.approx(3.0)]

    def test_predecessor_on_processor(self, diamond):
        m = Mapping([["s", "l", "t"], ["r"]], diamond)
        assert m.predecessor_on_processor("s") is None
        assert m.predecessor_on_processor("t") == "l"
        assert m.predecessor_on_processor("r") is None

    def test_positions(self, diamond):
        m = Mapping([["s", "l", "t"], ["r"]], diamond)
        assert m.position_of("t") == 2
        assert m.processor_of("t") == 0

    def test_as_lists_copies(self, diamond):
        m = Mapping.single_processor(diamond)
        lists = m.as_lists()
        lists[0].append("junk")
        assert "junk" not in m.tasks_on(0)

    def test_equality(self, diamond):
        m1 = Mapping([["s", "l", "t"], ["r"]], diamond)
        m2 = Mapping([["s", "l", "t"], ["r"]], diamond)
        m3 = Mapping([["s", "r", "t"], ["l"]], diamond)
        assert m1 == m2
        assert m1 != m3

    def test_empty_processors_allowed(self, diamond):
        m = Mapping([list(diamond.topological_order()), []], diamond)
        assert m.num_processors == 2
        assert m.is_single_processor()
