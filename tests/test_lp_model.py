"""Tests of the LP modelling layer (expressions, constraints, lowering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.model import Constraint, LinearExpression, LinearProgram, Variable


class TestExpressions:
    def test_variable_is_an_expression(self):
        m = LinearProgram()
        x = m.add_variable("x")
        assert isinstance(x, LinearExpression)
        assert x.coeffs == {0: 1.0}

    def test_addition_and_scaling(self):
        m = LinearProgram()
        x, y = m.add_variable("x"), m.add_variable("y")
        expr = 2 * x + y * 3 + 1.5
        assert expr.coeffs == {0: 2.0, 1: 3.0}
        assert expr.constant == pytest.approx(1.5)

    def test_subtraction_and_negation(self):
        m = LinearProgram()
        x, y = m.add_variable("x"), m.add_variable("y")
        expr = x - 2 * y - 1.0
        assert expr.coeffs == {0: 1.0, 1: -2.0}
        assert expr.constant == pytest.approx(-1.0)
        neg = -expr
        assert neg.coeffs == {0: -1.0, 1: 2.0}

    def test_rsub_and_division(self):
        m = LinearProgram()
        x = m.add_variable("x")
        expr = 5 - x
        assert expr.coeffs == {0: -1.0}
        assert expr.constant == pytest.approx(5.0)
        half = x / 2
        assert half.coeffs == {0: 0.5}

    def test_expression_value(self):
        m = LinearProgram()
        x, y = m.add_variable("x"), m.add_variable("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value([1.0, 2.0]) == pytest.approx(9.0)

    def test_invalid_multiplication(self):
        m = LinearProgram()
        x, y = m.add_variable("x"), m.add_variable("y")
        with pytest.raises(TypeError):
            _ = x * y  # nonlinear

    def test_comparisons_build_constraints(self):
        m = LinearProgram()
        x = m.add_variable("x")
        c1 = x <= 5
        c2 = x >= 1
        c3 = x == 3
        assert isinstance(c1, Constraint) and c1.sense == "<="
        assert isinstance(c2, Constraint) and c2.sense == ">="
        assert isinstance(c3, Constraint) and c3.sense == "=="

    def test_constraint_violation(self):
        m = LinearProgram()
        x = m.add_variable("x")
        c = x <= 5
        assert c.violation([4.0]) == pytest.approx(0.0)
        assert c.violation([7.0]) == pytest.approx(2.0)
        c_eq = x == 3
        assert c_eq.violation([2.0]) == pytest.approx(1.0)


class TestLinearProgram:
    def test_variable_bounds_validation(self):
        m = LinearProgram()
        with pytest.raises(ValueError):
            m.add_variable("x", lower=2.0, upper=1.0)

    def test_add_constraint_type_check(self):
        m = LinearProgram()
        x = m.add_variable("x")
        with pytest.raises(TypeError):
            m.add_constraint(x)  # an expression, not a constraint

    def test_objective_sense_validation(self):
        m = LinearProgram()
        x = m.add_variable("x")
        with pytest.raises(ValueError):
            m.set_objective(x, "maximize-ish")

    def test_to_arrays_minimisation(self):
        m = LinearProgram()
        x = m.add_variable("x", lower=0.0, upper=4.0)
        y = m.add_variable("y", lower=1.0)
        m.add_constraint(x + 2 * y <= 10)
        m.add_constraint(x - y >= -2)
        m.add_constraint(x + y == 5)
        m.set_objective(3 * x + y, "min")
        arrays = m.to_arrays()
        np.testing.assert_allclose(arrays["c"], [3.0, 1.0])
        assert arrays["A_ub"].shape == (2, 2)
        np.testing.assert_allclose(arrays["A_ub"][0], [1.0, 2.0])
        np.testing.assert_allclose(arrays["b_ub"], [10.0, 2.0])
        np.testing.assert_allclose(arrays["A_ub"][1], [-1.0, 1.0])
        np.testing.assert_allclose(arrays["A_eq"], [[1.0, 1.0]])
        np.testing.assert_allclose(arrays["b_eq"], [5.0])
        assert arrays["bounds"] == [(0.0, 4.0), (1.0, None)]
        assert not arrays["maximize"]

    def test_to_arrays_maximisation_negates(self):
        m = LinearProgram()
        x = m.add_variable("x")
        m.set_objective(2 * x + 1, "max")
        arrays = m.to_arrays()
        np.testing.assert_allclose(arrays["c"], [-2.0])
        assert arrays["offset"] == pytest.approx(-1.0)
        assert arrays["maximize"]

    def test_constraint_constant_moves_to_rhs(self):
        m = LinearProgram()
        x = m.add_variable("x")
        m.add_constraint(x + 3 <= 5)
        arrays = m.to_arrays()
        np.testing.assert_allclose(arrays["b_ub"], [2.0])

    def test_integrality_flags(self):
        m = LinearProgram()
        m.add_variable("x", integer=True)
        m.add_variable("y")
        arrays = m.to_arrays()
        np.testing.assert_array_equal(arrays["integrality"], [1, 0])
        assert m.has_integer_variables()

    def test_add_variables_bulk(self):
        m = LinearProgram()
        xs = m.add_variables(["a", "b", "c"], lower=0.0, upper=1.0)
        assert len(xs) == 3
        assert m.num_variables == 3
