"""Columnar == object-path equivalence of the batch pipeline, end to end.

The columnar tier must be an *invisible* optimisation: for any wire batch,
``/v1/solve-batch`` served from a :class:`~repro.core.columnar.ProblemBatch`
must produce **byte-identical** ``SolveBatchResponse`` payloads (modulo the
timing field) to the legacy ``list[Problem]`` object path.  Hypothesis
drives random chain / fork / series-parallel mixes through both entry
points of a fresh engine pair; a separate guard proves the all-miss
columnar path allocates zero per-instance ``Problem`` / ``TaskGraph``
objects (the zero-copy property the tier exists for).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.engine import Engine
from repro.api.types import SolveBatchRequest
from repro.core.columnar import ProblemBatch
from repro.core.problem_io import problem_from_dict, problem_to_dict

from tests.test_batch_solvers import (
    chain_problem,
    fork_problem,
    sp_problem,
    tricrit_chain_problem,
    weights_strategy,
)

# ----------------------------------------------------------------------
# instance strategies (canonical wire payloads via problem_to_dict)
# ----------------------------------------------------------------------
slack_strategy = st.floats(min_value=0.3, max_value=4.0)

chain_payloads = st.builds(
    lambda w, s: problem_to_dict(chain_problem(w, s)),
    weights_strategy, slack_strategy)

fork_payloads = st.builds(
    lambda w0, ws, s: problem_to_dict(fork_problem(w0, ws, s)),
    st.floats(min_value=1e-2, max_value=8.0),
    st.lists(st.floats(min_value=1e-2, max_value=8.0),
             min_size=1, max_size=4),
    slack_strategy)

tricrit_payloads = st.builds(
    lambda w, s: problem_to_dict(tricrit_chain_problem(w, s)),
    st.lists(st.one_of(st.just(0.0),
                       st.floats(min_value=1e-2, max_value=8.0)),
             min_size=1, max_size=4),
    st.floats(min_value=1.0, max_value=6.0))

sp_payloads = st.builds(
    lambda n, seed, s: problem_to_dict(sp_problem(n, seed, s)),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=2**16),
    st.floats(min_value=1.0, max_value=4.0))

batch_payloads = st.lists(
    st.one_of(chain_payloads, fork_payloads, tricrit_payloads, sp_payloads),
    min_size=1, max_size=8)


def _normalised(response):
    """Response dict with the (legitimately differing) timings zeroed."""
    data = response.to_dict()
    for row in data["results"]:
        row["elapsed_ms"] = 0.0
    return json.dumps(data, sort_keys=True)


class TestWireEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(batch_payloads)
    def test_byte_identical_responses(self, payloads):
        # Fresh engines per example: solver-context caches persist across
        # requests inside one engine, which is exactly the cross-request
        # state this equivalence must not depend on.
        columnar_engine = Engine(store=None)
        object_engine = Engine(store=None)

        request = SolveBatchRequest.from_dict({"problems": payloads})
        assert isinstance(request.batch, ProblemBatch)
        columnar = columnar_engine.solve_batch(request)

        legacy = SolveBatchRequest(
            problems=[problem_from_dict(p) for p in payloads])
        assert legacy.batch is None
        objects = object_engine.solve_batch(legacy)

        assert _normalised(columnar) == _normalised(objects)

    @settings(max_examples=15, deadline=None)
    @given(batch_payloads)
    def test_cache_round_byte_identical(self, payloads):
        engine = Engine(store=None)
        first = engine.solve_batch(
            SolveBatchRequest.from_dict({"problems": payloads}))
        second = engine.solve_batch(
            SolveBatchRequest.from_dict({"problems": payloads}))
        assert second.cached_count == len(payloads)
        # modulo the cached flags, the replay is byte-identical
        a = json.loads(_normalised(first))
        b = json.loads(_normalised(second))
        for row in a["results"] + b["results"]:
            row["cached"] = False
        a["cached_count"] = b["cached_count"] = 0
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestZeroCopy:
    def _count_allocations(self, payloads):
        import repro.core.problems as problems_mod
        from repro.dag import taskgraph as taskgraph_mod

        counts = {"problems": 0, "graphs": 0}
        orig_post = problems_mod.BiCritProblem.__post_init__
        orig_graph = taskgraph_mod.TaskGraph.__init__

        def counting_post(self, *args, **kwargs):
            counts["problems"] += 1
            return orig_post(self, *args, **kwargs)

        def counting_graph(self, *args, **kwargs):
            counts["graphs"] += 1
            return orig_graph(self, *args, **kwargs)

        engine = Engine(store=None)
        request = SolveBatchRequest.from_dict({"problems": payloads})
        problems_mod.BiCritProblem.__post_init__ = counting_post
        taskgraph_mod.TaskGraph.__init__ = counting_graph
        try:
            response = engine.solve_batch(request)
        finally:
            problems_mod.BiCritProblem.__post_init__ = orig_post
            taskgraph_mod.TaskGraph.__init__ = orig_graph
        assert len(response.results) == len(payloads)
        assert response.cached_count == 0
        return counts

    def test_all_miss_path_allocates_no_problem_objects(self):
        payloads = (
            [problem_to_dict(chain_problem([1.0, 2.0, 0.5], 1.2 + i * 0.1))
             for i in range(8)]
            + [problem_to_dict(fork_problem(2.0, [1.0, 0.7], 1.4 + i * 0.1))
               for i in range(4)]
            + [problem_to_dict(tricrit_chain_problem([1.0, 2.0], 2.5 + i))
               for i in range(4)])
        counts = self._count_allocations(payloads)
        assert counts == {"problems": 0, "graphs": 0}, counts

    def test_fallback_rows_allocate_only_themselves(self):
        # One series-parallel row forces exactly one materialization; the
        # surrounding fast rows must stay columnar.
        payloads = (
            [problem_to_dict(chain_problem([1.0, 2.0], 1.2 + i * 0.1))
             for i in range(6)]
            + [problem_to_dict(sp_problem(3, 7, 2.0))])
        counts = self._count_allocations(payloads)
        assert counts["problems"] == 1, counts
