"""REP003 fixture: RNG construction outside repro.core.rng."""

import random

import numpy as np
from numpy.random import default_rng


def fresh() -> float:
    rng = np.random.default_rng()          # unseeded: OS entropy
    return float(rng.random())


def seeded() -> float:
    rng = default_rng(7)                   # ad-hoc seed derivation
    return float(rng.random())


def legacy() -> None:
    np.random.seed(0)                      # global numpy state


def stdlib() -> float:
    return random.random()                 # hidden global state
