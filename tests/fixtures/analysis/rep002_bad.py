"""REP002 fixture: raw json serialisation outside the canonical module."""

import hashlib
import json
from json import dumps


def key_of(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def other_key(payload: dict) -> str:
    return dumps(payload)


def write(payload: dict, fh) -> None:
    json.dump(payload, fh)
