"""REP002 fixture: reading JSON is fine; only dumps/dump are keyed risks."""

import json


def load(text: str) -> dict:
    return json.loads(text)


def read(fh) -> dict:
    return json.load(fh)
