"""REP004 fixture: importing registry-managed solver impls directly."""

from repro.discrete.exact import solve_bicrit_discrete_milp


def run(problem):
    return solve_bicrit_discrete_milp(problem)
