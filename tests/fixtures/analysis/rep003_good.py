"""REP003 fixture: drawing from a generator resolved upstream is fine."""

import numpy as np


def draw(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.random(n)


def shuffle(rng: np.random.Generator, items: list) -> list:
    out = list(items)
    rng.shuffle(out)
    return out
