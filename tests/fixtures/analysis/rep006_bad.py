"""REP006 fixture: exact equality against float expressions."""


def check(x: float, y: float) -> bool:
    if x == 1.0:                 # literal float
        return True
    if x != y * 0.5:             # arithmetic containing a float literal
        return False
    return float(x) == float(y)  # float casts
