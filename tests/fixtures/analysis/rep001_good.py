"""REP001 fixture: deterministic handling of the same sets."""

tasks = {"c", "a", "b"}

as_list = sorted(tasks)                      # explicit order
joined = ",".join(sorted(tasks))
present = "a" in tasks                       # membership: order-free
other = {t.upper() for t in tasks}           # set -> set: order-free
count = len(tasks)

ordered = ["c", "a", "b"]                    # lists iterate deterministically
for t in ordered:
    pass
