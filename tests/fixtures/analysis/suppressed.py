"""Suppression-protocol fixture: violations with documented allows."""

import json

tasks = {"b", "a"}

as_list = list(tasks)  # repro: allow[REP001] -- fixture: order checked downstream

# repro: allow[REP002] -- fixture: standalone comment form, report output
# (continuation comment lines carry the rest of the reason)
blob = json.dumps({"k": 1})

both = [v for v in {0.5, 1.5} if v == 0.5]  # repro: allow[REP001,REP006] -- fixture: multi-id form
