"""REP005 fixture: every guarded access holds its lock (or declares
``# requires``)."""

import threading

_lock = threading.Lock()
_count = 0  # guarded-by: _lock


def bump() -> None:
    global _count
    with _lock:
        _count += 1


class Store:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict = {}  # guarded-by: _lock

    def get(self, key):
        with self._lock:
            return self._items.get(key)

    def _evict(self) -> None:  # requires: _lock
        self._items.clear()

    def reset(self) -> None:
        with self._lock:
            self._evict()
