"""REP004 fixture: going through dispatch keeps the registry in charge."""

from repro.solvers.dispatch import solve


def run(problem):
    return solve(problem, solver="discrete-exact")
