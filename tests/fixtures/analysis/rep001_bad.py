"""REP001 fixture: set iteration leaking into ordered constructs."""

tasks = {"c", "a", "b"}

as_list = list(tasks)                      # set -> list
pairs = list(enumerate(tasks))             # set -> enumerate
joined = ",".join(str(t) for t in tasks)   # set -> join

collected = []
for t in tasks:                            # set -> ordered accumulation
    collected.append(t)

comp = [t.upper() for t in {"x", "y"}]     # set literal -> list comp
algebra = list(tasks | {"d"})              # set algebra -> list
