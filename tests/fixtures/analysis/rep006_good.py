"""REP006 fixture: tolerance-based and integer comparisons."""

import math


def check(x: float, y: float, n: int) -> bool:
    if math.isclose(x, 1.0):
        return True
    if abs(x - y) < 1e-9:
        return False
    return n == 0  # integer equality is exact by construction
