"""REP005 fixture: guarded state touched without the lock."""

import threading

_lock = threading.Lock()
_count = 0  # guarded-by: _lock


def bump_unlocked() -> None:
    global _count
    _count += 1  # no lock held


class Store:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict = {}  # guarded-by: _lock

    def get_unlocked(self, key):
        return self._items.get(key)

    def deferred(self):
        with self._lock:
            def later():
                return len(self._items)  # runs after the lock is released
            return later
