"""Tests of the energy/deadline/reliability trade-off curves."""

from __future__ import annotations

import pytest

from repro.core.speeds import ContinuousSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.discrete.vdd_lp import solve_bicrit_vdd_lp
from repro.experiments.pareto import (
    ParetoPoint,
    energy_deadline_curve,
    energy_reliability_curve,
    pareto_filter,
)
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


class TestParetoFilter:
    def test_removes_dominated_and_infeasible_points(self):
        points = [
            ParetoPoint(1.0, 10.0),
            ParetoPoint(2.0, 12.0),            # dominated (longer and costlier)
            ParetoPoint(2.0, 6.0),
            ParetoPoint(3.0, 6.0),             # dominated (same energy, longer)
            ParetoPoint(4.0, 1.0, feasible=False),
            ParetoPoint(5.0, 2.0),
        ]
        kept = pareto_filter(points)
        assert [(p.deadline, p.energy) for p in kept] == [(1.0, 10.0), (2.0, 6.0), (5.0, 2.0)]


class TestEnergyDeadlineCurve:
    def test_energy_decreases_with_deadline_and_follows_inverse_square(self):
        graph = generators.chain([2.0, 3.0, 1.0])
        platform = Platform(1, ContinuousSpeeds(0.01, 1.0))
        mapping = Mapping.single_processor(graph)
        slacks = (1.0, 1.5, 2.0, 3.0)
        points = energy_deadline_curve(mapping, platform, slacks=slacks)
        assert len(points) == len(slacks)
        energies = [p.energy for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(energies[:-1], energies[1:]))
        # Before the fmin bound binds, E(D) = W^3/D^2, so E * D^2 is constant.
        products = [p.energy * p.deadline ** 2 for p in points]
        assert products[0] == pytest.approx(products[1], rel=1e-6)
        assert products[1] == pytest.approx(products[2], rel=1e-6)

    def test_custom_solver_traces_vdd_curve_above_continuous(self):
        graph = generators.random_chain(4, seed=3)
        mapping = Mapping.single_processor(graph)
        continuous_platform = Platform(1, ContinuousSpeeds(0.2, 1.0))
        vdd_platform = Platform(1, VddHoppingSpeeds([0.2, 0.6, 1.0]))
        slacks = (1.2, 1.8, 2.5)
        continuous = energy_deadline_curve(mapping, continuous_platform, slacks=slacks)
        vdd = energy_deadline_curve(mapping, vdd_platform, slacks=slacks,
                                    solver=solve_bicrit_vdd_lp)
        for c, v in zip(continuous, vdd):
            assert v.energy >= c.energy - 1e-9

    def test_infeasible_slack_below_one_is_flagged(self):
        graph = generators.chain([4.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        mapping = Mapping.single_processor(graph)
        points = energy_deadline_curve(mapping, platform, slacks=(0.5, 1.0))
        assert not points[0].feasible
        assert points[1].feasible


class TestEnergyReliabilityCurve:
    def test_energy_increases_with_stricter_threshold(self):
        graph = generators.random_chain(4, seed=11)
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        mapping = Mapping.single_processor(graph)
        deadline = 2.5 * graph.total_weight()
        points = energy_reliability_curve(mapping, platform, deadline,
                                          frel_values=(0.4, 0.7, 1.0))
        assert all(p.feasible for p in points)
        energies = [p.energy for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(energies[:-1], energies[1:]))
        # At the strictest threshold re-execution is the only way to slow
        # down, so the solver uses it (the deadline slack is generous).
        assert points[-1].num_reexecuted >= 1
