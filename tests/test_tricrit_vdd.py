"""Tests of TRI-CRIT under the VDD-HOPPING model (NP-complete case, Section IV)."""

from __future__ import annotations

import pytest

from repro.core.problems import TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.discrete.tricrit_vdd import solve_tricrit_vdd_exact, solve_tricrit_vdd_heuristic
from repro.discrete.vdd_lp import two_speed_structure
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform

MODES = (0.2, 0.4, 0.6, 0.8, 1.0)


def vdd_tricrit_problem(graph, num_processors, slack, *, lambda0=1e-4) -> TriCritProblem:
    model = ReliabilityModel(fmin=MODES[0], fmax=MODES[-1], lambda0=lambda0)
    platform = Platform(num_processors, VddHoppingSpeeds(MODES),
                        reliability_model=model)
    mapping = (Mapping.single_processor(graph) if num_processors == 1
               else critical_path_mapping(graph, num_processors, fmax=1.0).mapping)
    augmented = mapping.augmented_graph()
    finish = {}
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t)
    return TriCritProblem(mapping, platform, slack * max(finish.values()))


class TestHeuristic:
    def test_schedule_feasible_reliable_and_on_modes(self):
        problem = vdd_tricrit_problem(generators.random_chain(5, seed=1), 1, 2.5)
        result = solve_tricrit_vdd_heuristic(problem)
        assert result.feasible
        schedule = result.require_schedule()
        report = problem.evaluate(schedule)
        assert report.feasible
        # Every interval speed is one of the platform modes.
        for decision in schedule.decisions.values():
            for execution in decision.executions:
                for f, _ in execution.intervals:
                    assert problem.platform.speed_model.is_admissible(f)

    def test_two_speed_property_holds(self):
        problem = vdd_tricrit_problem(generators.random_fork(4, seed=2), 5, 2.5)
        result = solve_tricrit_vdd_heuristic(problem)
        report = two_speed_structure(result.require_schedule())
        assert report.max_speeds_per_task <= 2

    def test_energy_close_to_continuous_source(self):
        problem = vdd_tricrit_problem(generators.random_chain(5, seed=3), 1, 2.0)
        result = solve_tricrit_vdd_heuristic(problem)
        continuous_energy = result.metadata["continuous_energy"]
        assert result.energy >= continuous_energy - 1e-9
        assert result.energy <= 1.3 * continuous_energy

    def test_beats_all_fmax_when_slack_allows(self):
        graph = generators.random_chain(5, seed=4)
        problem = vdd_tricrit_problem(graph, 1, 2.5)
        result = solve_tricrit_vdd_heuristic(problem)
        all_fmax_energy = graph.total_weight()  # w * fmax^2 with fmax=1
        assert result.energy < all_fmax_energy

    def test_requires_vdd_platform(self):
        graph = generators.chain([1.0, 1.0])
        model = ReliabilityModel(fmin=0.1, fmax=1.0)
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0), reliability_model=model)
        problem = TriCritProblem(Mapping.single_processor(graph), platform, 5.0)
        with pytest.raises(TypeError):
            solve_tricrit_vdd_heuristic(problem)


class TestExact:
    def test_exact_at_least_as_good_as_heuristic(self):
        problem = vdd_tricrit_problem(generators.random_chain(4, seed=5), 1, 2.5)
        exact = solve_tricrit_vdd_exact(problem)
        heuristic = solve_tricrit_vdd_heuristic(problem)
        assert exact.feasible
        assert exact.energy <= heuristic.energy * (1.0 + 1e-6)

    def test_subset_count(self):
        problem = vdd_tricrit_problem(generators.random_chain(3, seed=6), 1, 2.0)
        exact = solve_tricrit_vdd_exact(problem)
        assert exact.metadata["subsets_evaluated"] == 2 ** 3

    def test_guard_on_large_instances(self):
        problem = vdd_tricrit_problem(generators.random_chain(14, seed=7), 1, 2.0)
        with pytest.raises(ValueError):
            solve_tricrit_vdd_exact(problem, max_tasks=8)

    def test_exact_schedule_feasible(self):
        problem = vdd_tricrit_problem(generators.random_fork(3, seed=8), 4, 2.5)
        exact = solve_tricrit_vdd_exact(problem)
        report = problem.evaluate(exact.require_schedule())
        assert report.feasible

    def test_requires_vdd_platform(self, tricrit_chain_problem):
        with pytest.raises(TypeError):
            solve_tricrit_vdd_exact(tricrit_chain_problem)
