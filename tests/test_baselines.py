"""Tests of the baseline scheduling policies."""

from __future__ import annotations

import math

import pytest

from repro.baselines import (
    BASELINES,
    greedy_reexecution,
    local_slack_reclaiming,
    no_dvfs,
    uniform_slowdown,
)
from repro.continuous.bicrit import solve_bicrit_continuous
from repro.core.problems import BiCritProblem, TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds, DiscreteSpeeds
from repro.dag import generators
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


def bicrit(graph, p, slack, speed_model=None) -> BiCritProblem:
    platform = Platform(p, speed_model or ContinuousSpeeds(0.1, 1.0))
    mapping = (Mapping.single_processor(graph) if p == 1
               else critical_path_mapping(graph, p, fmax=platform.fmax).mapping)
    augmented = mapping.augmented_graph()
    finish = {}
    for t in augmented.topological_order():
        s = max((finish[q] for q in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t) / platform.fmax
    return BiCritProblem(mapping, platform, slack * max(finish.values()))


def tricrit(graph, p, slack, *, lambda0=1e-4) -> TriCritProblem:
    model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0)
    platform = Platform(p, ContinuousSpeeds(0.1, 1.0), reliability_model=model)
    base = bicrit(graph, p, slack)
    return TriCritProblem(base.mapping, platform, base.deadline)


class TestNoDvfs:
    def test_everything_at_fmax(self):
        problem = bicrit(generators.random_chain(4, seed=1), 1, 1.5)
        result = no_dvfs(problem)
        schedule = result.require_schedule()
        assert all(f == problem.fmax for spd in schedule.speed_assignment().values()
                   for f in spd)
        assert problem.evaluate(schedule).feasible

    def test_is_energy_upper_bound(self):
        problem = bicrit(generators.random_layered_dag(3, 3, seed=2), 3, 1.8)
        optimum = solve_bicrit_continuous(problem)
        assert no_dvfs(problem).energy >= optimum.energy - 1e-9


class TestUniformSlowdown:
    def test_meets_deadline_exactly_when_binding(self):
        problem = bicrit(generators.random_chain(4, seed=3), 1, 1.6)
        result = uniform_slowdown(problem)
        schedule = result.require_schedule()
        assert schedule.makespan() == pytest.approx(problem.deadline, rel=1e-9)
        assert problem.evaluate(schedule).feasible

    def test_rounds_up_to_admissible_mode_on_discrete_platform(self):
        problem = bicrit(generators.random_chain(4, seed=3), 1, 1.6,
                         speed_model=DiscreteSpeeds([0.25, 0.5, 0.75, 1.0]))
        result = uniform_slowdown(problem)
        schedule = result.require_schedule()
        assert problem.evaluate(schedule).feasible
        speed = result.metadata["uniform_speed"]
        assert problem.platform.speed_model.is_admissible(speed)

    def test_infeasible_detected(self):
        problem = BiCritProblem(
            Mapping.single_processor(generators.chain([10.0])),
            Platform(1, ContinuousSpeeds(0.1, 1.0)), 5.0)
        assert not uniform_slowdown(problem).feasible

    def test_between_optimum_and_no_dvfs(self):
        problem = bicrit(generators.random_layered_dag(3, 3, seed=4), 3, 2.0)
        optimum = solve_bicrit_continuous(problem)
        uniform = uniform_slowdown(problem)
        assert optimum.energy - 1e-6 <= uniform.energy <= no_dvfs(problem).energy + 1e-9

    def test_reliability_floor_for_tricrit(self):
        problem = tricrit(generators.random_chain(4, seed=5), 1, 3.0)
        result = uniform_slowdown(problem)
        report = problem.evaluate(result.require_schedule())
        assert report.feasible  # frel floor respected


class TestLocalSlackReclaiming:
    def test_feasible_and_no_worse_than_no_dvfs(self):
        problem = bicrit(generators.random_layered_dag(4, 3, seed=6), 3, 1.7)
        local = local_slack_reclaiming(problem)
        schedule = local.require_schedule()
        assert problem.evaluate(schedule).feasible
        assert local.energy <= no_dvfs(problem).energy + 1e-9

    def test_global_convex_optimum_at_least_as_good(self):
        problem = bicrit(generators.random_layered_dag(4, 3, seed=7), 3, 1.7)
        local = local_slack_reclaiming(problem)
        globally = solve_bicrit_continuous(problem)
        assert globally.energy <= local.energy + 1e-6

    def test_chain_local_equals_global_when_single_task_has_all_slack(self):
        # On a single-task "chain" both approaches coincide.
        problem = bicrit(generators.chain([2.0]), 1, 2.0)
        local = local_slack_reclaiming(problem)
        globally = solve_bicrit_continuous(problem)
        assert local.energy == pytest.approx(globally.energy, rel=1e-6)

    def test_infeasible_instance(self):
        problem = BiCritProblem(
            Mapping.single_processor(generators.chain([10.0])),
            Platform(1, ContinuousSpeeds(0.1, 1.0)), 5.0)
        assert not local_slack_reclaiming(problem).feasible


class TestGreedyReexecution:
    def test_requires_tricrit(self):
        problem = bicrit(generators.random_chain(3, seed=8), 1, 2.0)
        with pytest.raises(TypeError):
            greedy_reexecution(problem)

    def test_feasible_and_not_worse_than_uniform(self):
        problem = tricrit(generators.random_chain(5, seed=9), 1, 3.0)
        result = greedy_reexecution(problem)
        schedule = result.require_schedule()
        assert problem.evaluate(schedule).feasible
        assert result.energy <= uniform_slowdown(problem).energy + 1e-9

    def test_reexecutes_when_slack_is_large(self):
        problem = tricrit(generators.random_chain(4, seed=10), 1, 4.0)
        result = greedy_reexecution(problem)
        assert len(result.metadata["reexecuted"]) >= 1

    def test_registry(self):
        assert set(BASELINES) == {"no_dvfs", "uniform_slowdown", "local_slack_reclaiming"}
