"""Tests of the INCREMENTAL approximation algorithm and its guaranteed factor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous.bicrit import solve_bicrit_continuous
from repro.core.problems import BiCritProblem
from repro.core.speeds import ContinuousSpeeds, DiscreteSpeeds, IncrementalSpeeds
from repro.dag import generators
from repro.discrete.exact import solve_bicrit_discrete_milp
from repro.discrete.incremental_approx import (
    approximation_bound,
    solve_bicrit_incremental_approx,
)
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


def incremental_problem(weights, slack, *, fmin=0.25, fmax=1.0, delta=0.25) -> BiCritProblem:
    graph = generators.chain(weights)
    platform = Platform(1, IncrementalSpeeds(fmin, fmax, delta))
    deadline = slack * graph.total_weight() / fmax
    return BiCritProblem(Mapping.single_processor(graph), platform, deadline)


class TestApproximationBound:
    def test_formula(self):
        model = IncrementalSpeeds(0.5, 1.0, 0.1)
        assert approximation_bound(model) == pytest.approx((1 + 0.1 / 0.5) ** 2)
        assert approximation_bound(model, K=4) == pytest.approx(
            (1 + 0.2) ** 2 * (1 + 0.25) ** 2
        )

    def test_invalid_k(self):
        model = IncrementalSpeeds(0.5, 1.0, 0.1)
        with pytest.raises(ValueError):
            approximation_bound(model, K=0)

    def test_alternative_exponent(self):
        model = IncrementalSpeeds(0.5, 1.0, 0.1)
        assert approximation_bound(model, exponent=2.0) == pytest.approx(1.2)


class TestApproximationAlgorithm:
    def test_feasible_and_admissible(self):
        problem = incremental_problem([1.0, 2.0, 1.5], 1.6)
        result = solve_bicrit_incremental_approx(problem)
        schedule = result.require_schedule()
        assert schedule.is_feasible(problem.deadline, deadline_tol=1e-6)
        for decision in schedule.decisions.values():
            assert problem.platform.speed_model.is_admissible(decision.speeds()[0])

    def test_within_guaranteed_factor_of_continuous(self):
        for slack in (1.3, 1.8, 2.5):
            problem = incremental_problem([1.0, 2.0, 3.0, 1.0], slack)
            result = solve_bicrit_incremental_approx(problem)
            continuous = solve_bicrit_continuous(BiCritProblem(
                problem.mapping, problem.platform.continuous_twin(), problem.deadline))
            bound = approximation_bound(problem.platform.speed_model)
            assert result.energy <= bound * continuous.energy * (1 + 1e-6)

    def test_within_factor_of_discrete_optimum(self):
        # The continuous optimum lower-bounds the discrete optimum, so the
        # approximation is also within the factor of the true optimum.
        problem = incremental_problem([1.0, 2.0], 1.5)
        approx = solve_bicrit_incremental_approx(problem)
        exact = solve_bicrit_discrete_milp(problem)
        bound = approximation_bound(problem.platform.speed_model)
        assert exact.energy <= approx.energy * (1 + 1e-9)
        assert approx.energy <= bound * exact.energy * (1 + 1e-6)

    def test_k_parameter_tightens_deadline(self):
        problem = incremental_problem([1.0, 2.0, 1.0], 2.0)
        exact_relax = solve_bicrit_incremental_approx(problem, K=None)
        shrunk = solve_bicrit_incremental_approx(problem, K=3)
        assert shrunk.feasible
        assert shrunk.energy >= exact_relax.energy - 1e-9
        assert shrunk.metadata["K"] == 3
        with pytest.raises(ValueError):
            solve_bicrit_incremental_approx(problem, K=0)

    def test_k_fallback_when_shrunk_deadline_infeasible(self):
        # Slack 1.05: shrinking by K/(K+1) = 1/2 makes it infeasible, the
        # solver must fall back to the original deadline.
        problem = incremental_problem([1.0, 1.0], 1.05)
        result = solve_bicrit_incremental_approx(problem, K=1)
        assert result.feasible

    def test_infeasible_instance(self):
        problem = incremental_problem([4.0, 4.0], 0.9)
        assert solve_bicrit_incremental_approx(problem).status == "infeasible"

    def test_works_on_mapped_dag(self):
        graph = generators.random_layered_dag(3, 2, seed=8)
        platform = Platform(2, IncrementalSpeeds(0.25, 1.0, 0.25))
        schedule = critical_path_mapping(graph, 2, fmax=1.0)
        problem = BiCritProblem(schedule.mapping, platform, 1.7 * schedule.makespan)
        result = solve_bicrit_incremental_approx(problem)
        assert result.feasible
        assert result.require_schedule().is_feasible(problem.deadline, deadline_tol=1e-6)

    def test_arbitrary_discrete_sets_accepted_as_heuristic(self):
        graph = generators.chain([1.0, 1.0])
        platform = Platform(1, DiscreteSpeeds([0.3, 0.45, 1.0]))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, 4.0)
        result = solve_bicrit_incremental_approx(problem)
        assert result.feasible

    def test_requires_discrete_model(self):
        graph = generators.chain([1.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, 4.0)
        with pytest.raises(TypeError):
            solve_bicrit_incremental_approx(problem)

    @given(st.floats(min_value=0.05, max_value=0.4),
           st.floats(min_value=1.2, max_value=3.0),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_ratio_within_bound_property(self, delta, slack, seed):
        weights = list(generators.random_weights(4, seed=seed, low=1.0, high=4.0))
        problem = incremental_problem(weights, slack, fmin=0.25, fmax=1.0, delta=delta)
        result = solve_bicrit_incremental_approx(problem)
        continuous = solve_bicrit_continuous(BiCritProblem(
            problem.mapping, problem.platform.continuous_twin(), problem.deadline))
        bound = approximation_bound(problem.platform.speed_model)
        assert result.energy <= bound * continuous.energy * (1 + 1e-6)
