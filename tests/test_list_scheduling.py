"""Tests of the list-scheduling mapping heuristics."""

from __future__ import annotations

import pytest

from repro.dag import generators
from repro.dag.analysis import makespan_lower_bound
from repro.platform.list_scheduling import (
    MAPPING_HEURISTICS,
    critical_path_mapping,
    largest_first_mapping,
    list_schedule,
    min_loaded_mapping,
    random_mapping,
    round_robin_mapping,
    topological_mapping,
)


@pytest.fixture
def layered():
    return generators.random_layered_dag(4, 4, seed=9)


class TestListSchedule:
    def test_single_processor_makespan_equals_total_work(self, layered):
        result = list_schedule(layered, 1, fmax=1.0)
        assert result.makespan == pytest.approx(layered.total_weight())

    def test_respects_precedence(self, layered):
        result = list_schedule(layered, 3, fmax=1.0)
        for u, v in layered.edges():
            assert result.start_times[v] >= result.finish_times[u] - 1e-9

    def test_no_processor_overlap(self, layered):
        result = list_schedule(layered, 3, fmax=1.0)
        for proc in range(3):
            tasks = result.mapping.tasks_on(proc)
            for a, b in zip(tasks[:-1], tasks[1:]):
                assert result.start_times[b] >= result.finish_times[a] - 1e-9

    def test_makespan_at_least_lower_bound(self, layered):
        for p in (1, 2, 4):
            result = list_schedule(layered, p, fmax=1.0)
            assert result.makespan >= makespan_lower_bound(layered, p, 1.0) - 1e-9

    def test_speed_scales_durations(self, layered):
        slow = list_schedule(layered, 2, fmax=0.5)
        fast = list_schedule(layered, 2, fmax=1.0)
        assert slow.makespan == pytest.approx(2.0 * fast.makespan)

    def test_every_task_mapped_exactly_once(self, layered):
        result = list_schedule(layered, 3)
        mapped = [t for k in range(3) for t in result.mapping.tasks_on(k)]
        assert sorted(map(str, mapped)) == sorted(map(str, layered.tasks()))

    def test_invalid_arguments(self, layered):
        with pytest.raises(ValueError):
            list_schedule(layered, 0)
        with pytest.raises(ValueError):
            list_schedule(layered, 2, fmax=0.0)
        with pytest.raises(ValueError):
            list_schedule(layered, 2, placement="bogus")

    def test_utilisation_between_zero_and_one(self, layered):
        result = list_schedule(layered, 3)
        for u in result.processor_utilisation():
            assert 0.0 <= u <= 1.0 + 1e-9


class TestNamedHeuristics:
    @pytest.mark.parametrize("name", sorted(MAPPING_HEURISTICS))
    def test_every_heuristic_produces_valid_mapping(self, layered, name):
        result = MAPPING_HEURISTICS[name](layered, 3)
        assert result.mapping.num_processors == 3
        assert result.makespan > 0
        # The mapping's augmented graph must be a DAG (validated on build).
        assert result.mapping.augmented_graph().num_tasks == layered.num_tasks

    def test_critical_path_beats_random_on_average(self):
        wins = 0
        trials = 6
        for seed in range(trials):
            g = generators.random_layered_dag(5, 4, seed=seed)
            cp = critical_path_mapping(g, 3).makespan
            rnd = random_mapping(g, 3, seed=seed).makespan
            if cp <= rnd + 1e-9:
                wins += 1
        assert wins >= trials - 1

    def test_round_robin_balances_task_counts(self, layered):
        result = round_robin_mapping(layered, 4)
        counts = [len(result.mapping.tasks_on(k)) for k in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_fork_on_many_processors_runs_children_in_parallel(self):
        g = generators.fork(1.0, [1.0, 1.0, 1.0, 1.0])
        result = critical_path_mapping(g, 5)
        # All children can start right after the source.
        assert result.makespan == pytest.approx(2.0)

    def test_chain_cannot_be_parallelised(self):
        g = generators.chain([1.0, 2.0, 3.0])
        result = critical_path_mapping(g, 4)
        assert result.makespan == pytest.approx(6.0)

    def test_min_loaded_and_largest_first_run(self, layered):
        assert min_loaded_mapping(layered, 2).makespan > 0
        assert largest_first_mapping(layered, 2).makespan > 0
        assert topological_mapping(layered, 2).makespan > 0
