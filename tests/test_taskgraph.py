"""Tests of the weighted task-graph substrate."""

from __future__ import annotations

import pytest

from repro.dag.taskgraph import Task, TaskGraph


class TestConstruction:
    def test_basic_construction(self):
        g = TaskGraph({"a": 1.0, "b": 2.0}, [("a", "b")])
        assert g.num_tasks == 2
        assert g.num_edges == 1
        assert g.weight("a") == 1.0
        assert set(g.tasks()) == {"a", "b"}

    def test_rejects_cycles(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph({"a": 1.0, "b": 1.0}, [("a", "b"), ("b", "a")])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            TaskGraph({"a": 1.0}, [("a", "a")])

    def test_rejects_unknown_edge_endpoint(self):
        with pytest.raises(ValueError, match="unknown task"):
            TaskGraph({"a": 1.0}, [("a", "b")])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            TaskGraph({"a": -1.0})

    def test_rejects_non_finite_weight(self):
        with pytest.raises(ValueError):
            TaskGraph({"a": float("nan")})

    def test_task_dataclass_validation(self):
        with pytest.raises(ValueError):
            Task("a", -1.0)
        assert Task("a", 2.0).weight == 2.0

    def test_from_networkx_roundtrip(self):
        g = TaskGraph({"a": 1.0, "b": 2.0}, [("a", "b")])
        g2 = TaskGraph.from_networkx(g.graph)
        assert g == g2

    def test_copy_is_independent(self):
        g = TaskGraph({"a": 1.0, "b": 2.0}, [("a", "b")])
        c = g.copy()
        assert c == g
        assert c is not g


class TestAccessors:
    @pytest.fixture
    def diamond(self) -> TaskGraph:
        return TaskGraph(
            {"s": 1.0, "l": 2.0, "r": 3.0, "t": 1.5},
            [("s", "l"), ("s", "r"), ("l", "t"), ("r", "t")],
        )

    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == ["s"]
        assert diamond.sinks() == ["t"]

    def test_predecessors_successors(self, diamond):
        assert set(diamond.successors("s")) == {"l", "r"}
        assert set(diamond.predecessors("t")) == {"l", "r"}

    def test_total_weight(self, diamond):
        assert diamond.total_weight() == pytest.approx(7.5)

    def test_weight_array_in_topological_order(self, diamond):
        order = diamond.topological_order()
        weights = diamond.weight_array()
        assert list(weights) == [diamond.weight(t) for t in order]

    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_critical_path(self, diamond):
        # s -> r -> t is the heaviest path: 1 + 3 + 1.5.
        assert diamond.critical_path_weight() == pytest.approx(5.5)
        assert diamond.critical_path() == ["s", "r", "t"]

    def test_ancestors_descendants(self, diamond):
        assert diamond.ancestors("t") == {"s", "l", "r"}
        assert diamond.descendants("s") == {"l", "r", "t"}

    def test_len_contains_iter(self, diamond):
        assert len(diamond) == 4
        assert "s" in diamond
        assert "zzz" not in diamond
        assert set(iter(diamond)) == {"s", "l", "r", "t"}


class TestStructuralQueries:
    def test_is_chain(self):
        chain = TaskGraph({"a": 1, "b": 1, "c": 1}, [("a", "b"), ("b", "c")])
        assert chain.is_chain()
        assert chain.chain_order() == ["a", "b", "c"]

    def test_single_task_is_chain_and_fork(self):
        g = TaskGraph({"a": 1.0})
        assert g.is_chain()
        assert g.is_fork() == (True, "a")

    def test_disconnected_is_not_chain(self):
        g = TaskGraph({"a": 1, "b": 1})
        assert not g.is_chain()
        with pytest.raises(ValueError):
            g.chain_order()

    def test_is_fork(self):
        fork = TaskGraph({"s": 1, "a": 1, "b": 1}, [("s", "a"), ("s", "b")])
        ok, source = fork.is_fork()
        assert ok and source == "s"

    def test_fork_with_deep_child_is_not_fork(self):
        g = TaskGraph({"s": 1, "a": 1, "b": 1}, [("s", "a"), ("a", "b")])
        assert g.is_fork() == (False, None)

    def test_is_join(self):
        join = TaskGraph({"a": 1, "b": 1, "t": 1}, [("a", "t"), ("b", "t")])
        ok, sink = join.is_join()
        assert ok and sink == "t"

    def test_reversed(self):
        g = TaskGraph({"a": 1, "b": 2}, [("a", "b")])
        r = g.reversed()
        assert r.edges() == [("b", "a")]
        assert r.weight("b") == 2


class TestMutationByCopy:
    def test_with_weights(self):
        g = TaskGraph({"a": 1.0, "b": 2.0}, [("a", "b")])
        h = g.with_weights({"a": 5.0})
        assert h.weight("a") == 5.0
        assert g.weight("a") == 1.0
        with pytest.raises(KeyError):
            g.with_weights({"zzz": 1.0})

    def test_subgraph(self):
        g = TaskGraph({"a": 1, "b": 2, "c": 3}, [("a", "b"), ("b", "c")])
        sub = g.subgraph(["a", "b"])
        assert set(sub.tasks()) == {"a", "b"}
        assert sub.edges() == [("a", "b")]
        with pytest.raises(KeyError):
            g.subgraph(["a", "zzz"])

    def test_equality_and_hash(self):
        g1 = TaskGraph({"a": 1, "b": 2}, [("a", "b")])
        g2 = TaskGraph({"b": 2, "a": 1}, [("a", "b")])
        g3 = TaskGraph({"a": 1, "b": 2})
        assert g1 == g2
        assert g1 != g3
        assert hash(g1) == hash(g2)
