"""Tests of the VDD-HOPPING linear program (paper Section IV, polynomial case)."""

from __future__ import annotations

import pytest

from repro.continuous.bicrit import solve_bicrit_continuous
from repro.core.problems import BiCritProblem
from repro.core.speeds import DiscreteSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.discrete.exact import solve_bicrit_discrete_milp
from repro.discrete.vdd_lp import build_vdd_lp, solve_bicrit_vdd_lp, two_speed_structure
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform

MODES = (0.2, 0.4, 0.6, 0.8, 1.0)


def chain_problem(weights, slack, modes=MODES) -> BiCritProblem:
    graph = generators.chain(weights)
    platform = Platform(1, VddHoppingSpeeds(modes))
    deadline = slack * graph.total_weight() / platform.fmax
    return BiCritProblem(Mapping.single_processor(graph), platform, deadline)


def dag_problem(seed=3, slack=1.6, p=3, modes=MODES) -> BiCritProblem:
    graph = generators.random_layered_dag(3, 3, seed=seed)
    platform = Platform(p, VddHoppingSpeeds(modes))
    schedule = critical_path_mapping(graph, p, fmax=platform.fmax)
    return BiCritProblem(schedule.mapping, platform, slack * schedule.makespan)


class TestLpConstruction:
    def test_model_size(self):
        problem = chain_problem([1.0, 2.0, 3.0], 1.5)
        model, alpha, start = build_vdd_lp(problem)
        n, m = 3, len(MODES)
        assert model.num_variables == n * m + n
        assert len(alpha) == n * m
        # work + deadline per task, one precedence row per augmented edge.
        assert model.num_constraints == 2 * n + 2

    def test_requires_vdd_platform(self):
        graph = generators.chain([1.0])
        platform = Platform(1, DiscreteSpeeds(MODES))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, 10.0)
        with pytest.raises(TypeError):
            build_vdd_lp(problem)


class TestLpSolution:
    def test_exact_when_continuous_speed_is_a_mode(self):
        # Uniform speed 0.5 is not a mode, but 1.0/2.0 slack -> speed 0.5...
        # pick slack 2.5 -> speed 0.4, an exact mode: LP must equal continuous.
        problem = chain_problem([1.0, 1.0], 2.5)
        vdd = solve_bicrit_vdd_lp(problem)
        continuous = solve_bicrit_continuous(BiCritProblem(
            problem.mapping, problem.platform.continuous_twin(), problem.deadline))
        assert vdd.energy == pytest.approx(continuous.energy, rel=1e-6)

    def test_sandwiched_between_continuous_and_discrete(self):
        for slack in (1.2, 1.7, 2.3):
            problem = chain_problem([1.0, 2.0, 3.0, 1.5], slack)
            vdd = solve_bicrit_vdd_lp(problem)
            continuous = solve_bicrit_continuous(BiCritProblem(
                problem.mapping, problem.platform.continuous_twin(), problem.deadline))
            discrete = solve_bicrit_discrete_milp(BiCritProblem(
                problem.mapping, problem.platform.with_speed_model(DiscreteSpeeds(MODES)),
                problem.deadline))
            assert continuous.energy <= vdd.energy * (1 + 1e-6)
            assert vdd.energy <= discrete.energy * (1 + 1e-6)

    def test_schedule_feasible_and_meets_deadline(self):
        problem = dag_problem()
        result = solve_bicrit_vdd_lp(problem)
        assert result.status == "optimal"
        schedule = result.require_schedule()
        assert schedule.is_feasible(problem.deadline, deadline_tol=1e-5)

    def test_two_speed_structure(self):
        problem = dag_problem(seed=7)
        result = solve_bicrit_vdd_lp(problem)
        report = two_speed_structure(result.require_schedule())
        assert report.max_speeds_per_task <= 2
        assert report.all_pairs_consecutive

    def test_canonicalisation_does_not_change_energy(self):
        problem = chain_problem([1.0, 2.0, 3.0], 1.8)
        canonical = solve_bicrit_vdd_lp(problem, canonicalize=True)
        raw = solve_bicrit_vdd_lp(problem, canonicalize=False)
        assert canonical.energy == pytest.approx(raw.energy, rel=1e-6)

    def test_backends_agree(self):
        problem = chain_problem([2.0, 1.0, 1.5], 1.6)
        scipy_result = solve_bicrit_vdd_lp(problem, backend="scipy")
        simplex_result = solve_bicrit_vdd_lp(problem, backend="simplex")
        assert simplex_result.energy == pytest.approx(scipy_result.energy, rel=1e-6)

    def test_infeasible_deadline(self):
        problem = chain_problem([5.0, 5.0], 0.9)
        result = solve_bicrit_vdd_lp(problem)
        assert result.status == "infeasible"

    def test_tight_deadline_runs_at_fmax(self):
        problem = chain_problem([1.0, 1.0], 1.0)
        result = solve_bicrit_vdd_lp(problem)
        schedule = result.require_schedule()
        for decision in schedule.decisions.values():
            assert decision.executions[0].mean_speed() == pytest.approx(1.0, rel=1e-6)

    def test_vdd_beats_discrete_strictly_when_speed_between_modes(self):
        # Required uniform speed 1/1.45 ~ 0.69 sits between modes 0.6 and 0.8:
        # the DISCRETE model must run some task faster than needed.
        problem = chain_problem([1.0, 1.0], 1.45)
        vdd = solve_bicrit_vdd_lp(problem)
        discrete = solve_bicrit_discrete_milp(BiCritProblem(
            problem.mapping, problem.platform.with_speed_model(DiscreteSpeeds(MODES)),
            problem.deadline))
        assert vdd.energy < discrete.energy - 1e-9
