"""Tests of the persistent shared result-store tier.

Covers the store itself (atomic sharded writes, envelope checksums,
quarantine, eviction, the mtime-invalidated index), request coalescing,
the engine's write-through integration (restart persistence without solver
dispatch, batch peeling, metrics), the one-tier property shared with the
campaign cache, multi-process contention, and the ``repro cache`` CLI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.api as api
from repro.api.types import SimulateRequest, SolveRequest
from repro.campaign.cache import ResultCache
from repro.core.problem_io import problem_to_dict
from repro.store import Coalescer, ResultStore, StoreError, resolve_store_root
from repro.store.canonical import content_checksum

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "0123" * 16


# ----------------------------------------------------------------------
# the store proper
# ----------------------------------------------------------------------
class TestResultStore:
    def test_roundtrip_and_envelope_layout(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = {"energy": 1.5, "rows": [1, 2, 3]}
        path = store.put(KEY_A, payload)
        assert store.get(KEY_A) == payload
        # Sharded layout: root/<namespace>/<key[:2]>/<key>.json.
        assert path == tmp_path / "store" / "results" / "aa" / f"{KEY_A}.json"
        envelope = json.loads(path.read_text())
        assert envelope["v"] == 1
        assert envelope["key"] == KEY_A
        assert envelope["namespace"] == "results"
        assert envelope["checksum"] == content_checksum(payload)
        assert envelope["payload"] == payload

    def test_namespaces_are_disjoint(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1}, "results")
        store.put(KEY_A, {"x": 2}, "campaign")
        assert store.get(KEY_A, "results") == {"x": 1}
        assert store.get(KEY_A, "campaign") == {"x": 2}
        assert store.namespaces() == ["campaign", "results"]
        assert store.clear("campaign") == 1
        assert store.get(KEY_A, "campaign") is None
        assert store.get(KEY_A, "results") == {"x": 1}

    def test_non_hex_keys_are_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StoreError):
            store.path_for("../../escape")
        with pytest.raises(StoreError):
            store.put("not a key", {})

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY_A) is None
        assert store.counters()["misses"] == 1

    def test_torn_write_is_quarantined_once(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"ok": True})
        path.write_text("{torn", encoding="utf-8")
        assert store.get(KEY_A) is None
        corrupt = path.with_suffix(path.suffix + ".corrupt")
        assert not path.exists() and corrupt.exists()
        assert store.counters()["quarantined"] == 1
        # Second read: plain miss, nothing left to quarantine.
        assert store.get(KEY_A) is None
        assert store.counters()["quarantined"] == 1
        # A rewrite is not shadowed.
        store.put(KEY_A, {"ok": "again"})
        assert store.get(KEY_A) == {"ok": "again"}

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"value": 1})
        envelope = json.loads(path.read_text())
        envelope["payload"]["value"] = 2       # bit rot: valid JSON, wrong hash
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert store.get(KEY_A) is None
        assert path.with_suffix(path.suffix + ".corrupt").exists()

    def test_verify_quarantines_only_damaged_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"fine": 1})
        bad = store.put(KEY_B, {"fine": 2})
        envelope = json.loads(bad.read_text())
        envelope["payload"]["fine"] = 666
        bad.write_text(json.dumps(envelope), encoding="utf-8")
        report = store.verify()
        assert report == {"checked": 2, "ok": 1, "quarantined": 1}
        assert store.get(KEY_A) == {"fine": 1}
        assert store.get(KEY_B) is None
        # A clean second pass.
        assert store.verify() == {"checked": 1, "ok": 1, "quarantined": 0}

    def test_index_sees_writes_from_other_instances(self, tmp_path):
        writer = ResultStore(tmp_path)
        reader = ResultStore(tmp_path)
        writer.put(KEY_A, {"generation": 1})
        assert reader.get(KEY_A) == {"generation": 1}
        time.sleep(0.01)       # ensure a distinct mtime on coarse filesystems
        writer.put(KEY_A, {"generation": 2})
        # The reader's in-memory index entry is stale; (mtime, size)
        # invalidation must force a re-read.
        assert reader.get(KEY_A) == {"generation": 2}

    def test_records_iterates_envelopes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"n": 1})
        store.put(KEY_B, {"n": 2})
        envelopes = list(store.records())
        assert [e["payload"]["n"] for e in envelopes] == [1, 2]

    def test_evict_to_drops_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path)
        paths = []
        for i, key in enumerate((KEY_A, KEY_B, KEY_C)):
            path = store.put(key, {"i": i, "pad": "x" * 64})
            # Deterministic LRU order regardless of filesystem timestamp
            # granularity.
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            paths.append(path)
        # Exactly the two newest fit (record sizes vary by a few bytes --
        # the envelope timestamp's float repr -- so budget on real sizes).
        budget = paths[1].stat().st_size + paths[2].stat().st_size
        evicted = store.evict_to(budget)
        assert evicted == 1
        assert not paths[0].exists()           # oldest gone
        assert paths[1].exists() and paths[2].exists()
        assert store.counters()["evictions"] == 1
        assert store.evict_to(10 * budget) == 0

    def test_byte_budget_self_evicts_on_put(self, tmp_path):
        probe = ResultStore(tmp_path / "probe")
        record_size = probe.put(KEY_A, {"pad": "x" * 64}).stat().st_size
        store = ResultStore(tmp_path / "store", max_bytes=2 * record_size)
        for i, key in enumerate((KEY_A, KEY_B, KEY_C)):
            path = store.put(key, {"pad": "x" * 64})
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        store.put("d" * 64, {"pad": "x" * 64})
        assert store.size_bytes() <= 2 * record_size + record_size  # tolerance
        assert store.count() < 4
        assert store.counters()["evictions"] >= 1

    def test_stats_shape(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1}, "results")
        store.put(KEY_B, {"y": 2}, "campaign")
        stats = store.stats()
        assert stats["entries_total"] == 2
        assert set(stats["namespaces"]) == {"results", "campaign"}
        assert stats["namespaces"]["results"]["entries"] == 1
        assert stats["bytes_total"] > 0
        assert set(stats["counters"]) == {"hits", "misses", "writes",
                                          "evictions", "quarantined"}

    def test_root_resolution_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(resolve_store_root()) == ".repro-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "legacy"))
        assert resolve_store_root() == tmp_path / "legacy"
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "new"))
        assert resolve_store_root() == tmp_path / "new"
        assert resolve_store_root(tmp_path / "explicit") == tmp_path / "explicit"


# ----------------------------------------------------------------------
# single-flight coalescing
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_one_leader_many_waiters(self):
        coalescer = Coalescer()
        flight, leader = coalescer.claim(KEY_A)
        assert leader
        waiters = [coalescer.claim(KEY_A) for _ in range(3)]
        assert all(f is flight and not is_leader for f, is_leader in waiters)
        coalescer.resolve(flight, result=42)
        assert all(f.wait(1.0) == 42 for f, _ in waiters)
        stats = coalescer.stats()
        assert stats == {"in_flight": 0, "coalesced_waits": 3,
                         "flights_led": 1}

    def test_leader_error_propagates_to_waiters(self):
        coalescer = Coalescer()
        flight, _ = coalescer.claim(KEY_A)
        waiter, leader = coalescer.claim(KEY_A)
        assert not leader
        coalescer.resolve(flight, error=RuntimeError("solver exploded"))
        with pytest.raises(RuntimeError, match="solver exploded"):
            waiter.wait(1.0)

    def test_resolved_flight_is_retired(self):
        coalescer = Coalescer()
        flight, _ = coalescer.claim(KEY_A)
        coalescer.resolve(flight, result=1)
        again, leader = coalescer.claim(KEY_A)
        assert leader and again is not flight

    def test_wait_timeout(self):
        coalescer = Coalescer()
        _, _ = coalescer.claim(KEY_A)
        waiter, _ = coalescer.claim(KEY_A)
        with pytest.raises(TimeoutError):
            waiter.wait(0.05)


# ----------------------------------------------------------------------
# engine integration: write-through, restart persistence, coalescing
# ----------------------------------------------------------------------
def _forbid_solves(monkeypatch):
    def _boom(*args, **kwargs):
        raise AssertionError("solver dispatch is forbidden in this phase")
    monkeypatch.setattr("repro.api.engine._kernel_solve", _boom)
    monkeypatch.setattr("repro.api.engine._kernel_solve_batch", _boom)


class TestEngineStore:
    def test_solve_writes_through_and_survives_restart(
            self, tmp_path, monkeypatch, small_chain_problem):
        store = ResultStore(tmp_path / "store")
        first_engine = api.Engine(store=store)
        payload = problem_to_dict(small_chain_problem)
        response = first_engine.solve(SolveRequest(problem=payload))
        assert response.cached is False
        assert store.count("results") == 1

        # "Restart": a fresh engine (empty LRU, empty problem pool) on the
        # same store root, with every solver entry point booby-trapped --
        # the answer must come purely from disk.
        restarted = api.Engine(store=ResultStore(tmp_path / "store"))
        _forbid_solves(monkeypatch)
        again = restarted.solve(SolveRequest(problem=payload))
        assert again.cached is True
        assert again.energy == response.energy
        assert again.makespan == response.makespan
        assert again.speeds == response.speeds
        assert again.num_reexecuted == response.num_reexecuted
        metrics = restarted.metrics()
        assert metrics["store"]["hits"] == 1
        assert metrics["cache"]["hits"] == 1

    def test_object_layer_rebuilds_a_real_schedule(
            self, tmp_path, monkeypatch, tricrit_chain_problem):
        store = ResultStore(tmp_path)
        engine = api.Engine(store=store)
        result, cached = engine.submit(tricrit_chain_problem)
        assert not cached
        restarted = api.Engine(store=ResultStore(tmp_path))
        _forbid_solves(monkeypatch)
        rebuilt, cached = restarted.submit(tricrit_chain_problem)
        assert cached
        assert rebuilt.schedule is not None
        assert rebuilt.energy == pytest.approx(result.energy)
        assert rebuilt.schedule.makespan() == pytest.approx(
            result.schedule.makespan())
        assert rebuilt.schedule.num_reexecuted() == \
            result.schedule.num_reexecuted()
        assert rebuilt.status == result.status
        assert rebuilt.solver == result.solver

    def test_simulate_works_from_a_store_hit(self, tmp_path, monkeypatch,
                                             small_chain_problem):
        store = ResultStore(tmp_path)
        payload = problem_to_dict(small_chain_problem)
        api.Engine(store=store).solve(SolveRequest(problem=payload))
        restarted = api.Engine(store=ResultStore(tmp_path))
        _forbid_solves(monkeypatch)
        sim = restarted.simulate(SimulateRequest(problem=payload, trials=50,
                                                 seed=3))
        assert sim.solve.cached is True
        assert sim.trials == 50
        assert 0.0 <= sim.success_rate <= 1.0

    def test_batch_peels_store_hits(self, tmp_path, monkeypatch,
                                    small_chain_problem, small_fork_problem):
        store = ResultStore(tmp_path)
        engine = api.Engine(store=store)
        pairs = engine.submit_batch([small_chain_problem, small_fork_problem])
        assert [cached for _, cached in pairs] == [False, False]
        assert store.count("results") == 2
        restarted = api.Engine(store=ResultStore(tmp_path))
        _forbid_solves(monkeypatch)
        pairs = restarted.submit_batch([small_chain_problem,
                                        small_fork_problem])
        assert [cached for _, cached in pairs] == [True, True]
        assert restarted.metrics()["store"]["hits"] == 2

    def test_store_disabled_engine_never_touches_disk(
            self, tmp_path, monkeypatch, small_chain_problem):
        monkeypatch.chdir(tmp_path)   # a stray default store would land here
        engine = api.Engine()
        engine.submit(small_chain_problem)
        assert not (tmp_path / ".repro-cache").exists()
        assert engine.metrics()["store"]["enabled"] is False
        assert engine.store_stats()["enabled"] is False

    def test_metrics_expose_store_and_coalesce_counters(
            self, tmp_path, small_chain_problem):
        engine = api.Engine(store=ResultStore(tmp_path))
        engine.submit(small_chain_problem)
        engine.submit(small_chain_problem)
        metrics = engine.metrics()
        assert metrics["store"]["enabled"] is True
        assert {"hits", "misses", "backend", "coalesce"} <= \
            set(metrics["store"])
        assert metrics["store"]["backend"]["writes"] == 1
        assert {"in_flight", "coalesced_waits", "flights_led"} == \
            set(metrics["store"]["coalesce"])
        assert "coalesced_hits" in metrics["cache"]
        stats = engine.store_stats()
        assert stats["enabled"] is True
        assert stats["namespaces"]["results"]["entries"] == 1

    def test_version_skew_means_miss_not_garbage(self, tmp_path, monkeypatch,
                                                 small_chain_problem):
        store = ResultStore(tmp_path)
        api.Engine(store=store).submit(small_chain_problem)
        # A different library version must not read this record back.
        monkeypatch.setattr("repro.__version__", "999.0.0")
        fresh = api.Engine(store=ResultStore(tmp_path))
        result, cached = fresh.submit(small_chain_problem)
        assert not cached
        assert result.schedule is not None


class TestCoalescing:
    def test_identical_concurrent_solves_run_once(self, monkeypatch,
                                                  small_chain_problem):
        engine = api.Engine()
        baseline, _ = engine.submit(small_chain_problem, use_cache=False)
        calls = []
        lock = threading.Lock()

        def slow_solve(problem, **kwargs):
            with lock:
                calls.append(1)
            time.sleep(0.25)
            return baseline

        monkeypatch.setattr("repro.api.engine._kernel_solve", slow_solve)
        fresh = api.Engine()
        results: list[tuple] = []
        out_lock = threading.Lock()

        def submit():
            pair = fresh.submit(small_chain_problem)
            with out_lock:
                results.append(pair)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        elapsed = time.perf_counter() - start
        assert len(results) == 8
        # K identical concurrent requests -> exactly one engine solve.
        assert len(calls) == 1
        assert all(result is baseline for result, _ in results)
        assert sum(1 for _, cached in results if not cached) == 1
        assert sum(1 for _, cached in results if cached) == 7
        # And they ran concurrently, not serially (8 x 0.25s >> 2s).
        assert elapsed < 2.0
        metrics = fresh.metrics()
        assert metrics["cache"]["hits"] == 7
        assert metrics["cache"]["misses"] == 1
        assert metrics["store"]["coalesce"]["flights_led"] >= 1

    def test_leader_failure_fails_the_waiters_once(self, monkeypatch,
                                                   small_chain_problem):
        release = threading.Event()

        def exploding_solve(problem, **kwargs):
            release.wait(5)
            raise RuntimeError("leader died")

        monkeypatch.setattr("repro.api.engine._kernel_solve", exploding_solve)
        engine = api.Engine()
        errors = []
        lock = threading.Lock()

        def submit():
            try:
                engine.submit(small_chain_problem)
            except RuntimeError as exc:
                with lock:
                    errors.append(str(exc))

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.2)
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert errors == ["leader died"] * 4
        # The failed flight is retired: the next request recomputes.
        monkeypatch.setattr("repro.api.engine._kernel_solve",
                            lambda problem, **kw: (_ for _ in ()).throw(
                                RuntimeError("second attempt")))
        with pytest.raises(RuntimeError, match="second attempt"):
            engine.submit(small_chain_problem)


# ----------------------------------------------------------------------
# one tier: campaign cache and engine share the same root
# ----------------------------------------------------------------------
class TestSharedTier:
    def test_campaign_and_engine_share_one_store_root(self, tmp_path,
                                                      small_chain_problem):
        from repro.campaign.registry import get_scenario
        from repro.campaign.runner import run_campaign

        store = ResultStore(tmp_path / "tier")
        api.Engine(store=store).submit(small_chain_problem)
        cache = ResultCache(store=store)
        instance = get_scenario("e1-fork-closed-form").instance(smoke=True)
        outcome = run_campaign([instance], cache=cache)
        assert outcome.errors == 0
        stats = store.stats()
        assert set(stats["namespaces"]) == {"campaign", "results"}
        assert stats["namespaces"]["campaign"]["entries"] == 1
        assert stats["namespaces"]["results"]["entries"] == 1
        # The campaign adapter reads what it wrote through the same store.
        assert outcome.results[0].key is not None
        assert cache.get(outcome.results[0].key)["scenario"] == \
            "e1-fork-closed-form"

    def test_cache_adapter_keeps_its_public_surface(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        record = {"key": KEY_A, "scenario": "x", "result": [1, 2]}
        path = cache.put(KEY_A, record)
        assert path == cache.path_for(KEY_A)
        assert cache.get(KEY_A) == record
        assert len(cache) == 1
        assert [r["scenario"] for r in cache.records()] == ["x"]
        assert cache.clear() == 1
        assert cache.get(KEY_A) is None


# ----------------------------------------------------------------------
# multi-process contention
# ----------------------------------------------------------------------
_HAMMER = """
import json, sys
from repro.store import ResultStore

root, writer_id, rounds = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
keys = ["{key_a}", "{key_b}", "{key_c}"]
store = ResultStore(root)
for round_no in range(rounds):
    for key in keys:
        store.put(key, {{"writer": writer_id, "round": round_no,
                         "blob": [writer_id] * 64}})
        value = store.get(key)
        # A concurrent read must never see a torn record: either a full
        # payload from some writer, or (never) garbage -- get() would
        # quarantine garbage, and this asserts it sees whole payloads.
        assert value is None or set(value) == {{"writer", "round", "blob"}}, value
print("clean")
"""


class TestMultiProcessContention:
    def test_concurrent_writers_and_readers_no_torn_records(self, tmp_path):
        root = tmp_path / "contended"
        script = _HAMMER.format(key_a=KEY_A, key_b=KEY_B, key_c=KEY_C)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p)
        procs = [subprocess.Popen(
            [sys.executable, "-c", script, str(root), str(n), "60"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=os.getcwd()) for n in range(3)]
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0, out
            assert "clean" in out
        store = ResultStore(root)
        # Exactly one surviving record per key, all readable and
        # checksum-clean; no temp files, no quarantined wrecks.
        assert store.count("results") == 3
        for key in (KEY_A, KEY_B, KEY_C):
            value = store.get(key)
            assert value is not None and value["writer"] in (0, 1, 2)
        assert store.verify() == {"checked": 3, "ok": 3, "quarantined": 0}
        assert list(root.rglob("*.tmp-*")) == []
        assert list(root.rglob("*.corrupt")) == []


# ----------------------------------------------------------------------
# the `repro cache` CLI
# ----------------------------------------------------------------------
class TestCacheCli:
    def _main(self, *argv):
        from repro.campaign.cli import main
        return main(list(argv))

    def test_stats(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"x": 1}, "results")
        store.put(KEY_B, {"y": 2}, "campaign")
        assert self._main("cache", "stats", "--cache-dir", str(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "results" in out and "campaign" in out
        assert "2 records" in out

    def test_stats_json(self, tmp_path, capsys):
        ResultStore(tmp_path).put(KEY_A, {"x": 1})
        assert self._main("cache", "stats", "--json",
                          "--cache-dir", str(tmp_path)) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries_total"] == 1

    def test_gc_evicts_to_budget(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        for i, key in enumerate((KEY_A, KEY_B, KEY_C)):
            path = store.put(key, {"pad": "x" * 128})
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
        assert self._main("cache", "gc", "--max-bytes", "0",
                          "--cache-dir", str(tmp_path)) == 0
        assert "evicted 3" in capsys.readouterr().out
        assert store.count("results") == 0

    def test_gc_parses_size_suffixes(self):
        from repro.campaign.cli import parse_bytes
        assert parse_bytes("100") == 100
        assert parse_bytes("2k") == 2048
        assert parse_bytes("1m") == 1024 ** 2
        assert parse_bytes("1g") == 1024 ** 3
        with pytest.raises(Exception):
            parse_bytes("banana")

    def test_verify_clean_then_tampered(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, {"x": 1})
        assert self._main("cache", "verify", "--cache-dir", str(tmp_path)) == 0
        assert "1 ok, 0 quarantined" in capsys.readouterr().out
        envelope = json.loads(path.read_text())
        envelope["payload"]["x"] = 999
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert self._main("cache", "verify", "--cache-dir", str(tmp_path)) == 1
        assert "1 quarantined" in capsys.readouterr().out
        assert path.with_suffix(path.suffix + ".corrupt").exists()
