"""Property-based equivalence of ``solve_batch`` against per-instance ``solve``.

The batched kernel (``repro.solvers.batch``) must be a drop-in replacement
for a ``[solve(p) for p in problems]`` loop: for randomized chains, forks
and series-parallel instances, every admissible solver and the ``auto``
dispatch must produce the same statuses, energies and (when materialised)
feasible schedules, whether evaluated per instance or as one batch.  The
vectorized kernels (chain/fork closed forms, the TRI-CRIT chain subset
table, the batched re-execution floors) are additionally checked to have
actually engaged, so these tests cannot silently pass through the scalar
fallback.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problems import BiCritProblem, TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform
from repro.solvers import (
    InadmissibleSolverError,
    SolverContext,
    admissible_solvers,
    batch_is_feasible,
    batch_reexecution_floors,
    plan_batch,
    solve,
    solve_batch,
)
from repro.solvers.batch import (
    KERNEL_CHAIN,
    KERNEL_FORK,
    KERNEL_SCALAR,
    KERNEL_TRICRIT_CHAIN,
    LazyScheduleResult,
)

# ----------------------------------------------------------------------
# instance builders (plain functions so fresh problems are cheap to remake)
# ----------------------------------------------------------------------
# Weights are either exactly zero (exercising the zero-weight task paths)
# or of sane magnitude -- denormal-scale weights make the *scalar* scipy
# fallback overflow, which is not the equivalence under test here.
weight_strategy = st.one_of(st.just(0.0),
                            st.floats(min_value=1e-2, max_value=8.0))
weights_strategy = st.lists(weight_strategy, min_size=1, max_size=5)


def chain_problem(weights, slack, fmin=0.1, fmax=1.0):
    graph = generators.chain(weights)
    mapping = Mapping.single_processor(graph)
    platform = Platform(1, ContinuousSpeeds(fmin, fmax))
    deadline = max(slack * graph.total_weight() / fmax, 1e-6)
    return BiCritProblem(mapping, platform, deadline)


def fork_problem(source_weight, child_weights, slack, fmin=0.05, fmax=2.0):
    graph = generators.fork(source_weight, child_weights)
    mapping = Mapping.one_task_per_processor(graph)
    platform = Platform(len(child_weights) + 1, ContinuousSpeeds(fmin, fmax))
    deadline = max(slack * graph.critical_path_weight() / fmax, 1e-6)
    return BiCritProblem(mapping, platform, deadline)


def tricrit_chain_problem(weights, slack, lambda0=1e-4):
    graph = generators.chain(weights)
    mapping = Mapping.single_processor(graph)
    reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0,
                                   sensitivity=3.0)
    platform = Platform(1, ContinuousSpeeds(0.1, 1.0),
                        reliability_model=reliability)
    deadline = max(slack * graph.total_weight(), 1e-6)
    return TriCritProblem(mapping, platform, deadline)


def sp_problem(size, seed, slack):
    graph = generators.random_series_parallel(size, seed=seed)
    mapping = Mapping.one_task_per_processor(graph)
    platform = Platform(graph.num_tasks, ContinuousSpeeds(0.001, 50.0))
    deadline = max(slack * graph.critical_path_weight(), 1e-6)
    return BiCritProblem(mapping, platform, deadline)


def assert_results_match(scalar, batch, problem, *, rel=1e-7):
    """Scalar and batched results must agree on status, energy and schedule."""
    assert batch.status == scalar.status
    assert batch.solver == scalar.solver
    if math.isfinite(scalar.energy) or math.isfinite(batch.energy):
        assert batch.energy == pytest.approx(scalar.energy, rel=rel, abs=1e-9)
    if scalar.schedule is None:
        assert batch.schedule is None
        return
    materialised = batch.schedule
    assert materialised is not None
    assert materialised.energy() == pytest.approx(scalar.schedule.energy(),
                                                  rel=rel, abs=1e-9)
    # A feasible scalar schedule implies a feasible batched one (same
    # constraints, possibly a different but equally good optimum).
    if isinstance(problem, TriCritProblem):
        model = problem.reliability()
        assert scalar.schedule.is_feasible(problem.deadline,
                                           check_reliability=True,
                                           reliability_model=model) \
            == materialised.is_feasible(problem.deadline,
                                        check_reliability=True,
                                        reliability_model=model)
    else:
        assert scalar.schedule.is_feasible(problem.deadline) \
            == materialised.is_feasible(problem.deadline)


def roundtrip(problems, fresh, solver):
    """Solve per instance, then re-build fresh instances and solve as a batch."""
    scalar = [solve(p, solver=solver) for p in problems]
    batch = solve_batch(fresh, solver=solver)
    for s, b, p in zip(scalar, batch, fresh):
        assert_results_match(s, b, p)
    return scalar, batch


# ----------------------------------------------------------------------
# property suites, one per vectorized kernel
# ----------------------------------------------------------------------
class TestChainClosedFormEquivalence:
    @given(st.lists(weights_strategy, min_size=1, max_size=3),
           st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_scalar_for_every_admissible_solver(self, batches,
                                                              slack):
        problems = [chain_problem(w, slack) for w in batches]
        for name in ["auto"] + [s.name for s in admissible_solvers(problems[0])]:
            roundtrip(problems,
                      [chain_problem(w, slack) for w in batches], name)

    @given(st.lists(weights_strategy, min_size=2, max_size=6),
           st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=25, deadline=None)
    def test_chain_kernel_engages(self, batches, slack):
        problems = [chain_problem(w, slack) for w in batches]
        plan = plan_batch(problems, "bicrit-closed-form")
        assert plan.kernel_counts() == {KERNEL_CHAIN: len(problems)}


class TestForkClosedFormEquivalence:
    @given(st.lists(st.tuples(weight_strategy,
                              st.lists(weight_strategy,
                                       min_size=1, max_size=4)),
                    min_size=1, max_size=3),
           st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_scalar_for_every_admissible_solver(self, specs,
                                                              slack):
        problems = [fork_problem(w0, kids, slack) for w0, kids in specs]
        for name in ["auto"] + [s.name for s in admissible_solvers(problems[0])]:
            roundtrip(problems,
                      [fork_problem(w0, kids, slack) for w0, kids in specs],
                      name)

    @given(st.floats(min_value=0.1, max_value=6.0),
           st.lists(st.floats(min_value=0.1, max_value=6.0),
                    min_size=1, max_size=5),
           st.floats(min_value=0.6, max_value=3.0))
    @settings(max_examples=25, deadline=None)
    def test_fork_kernel_engages(self, w0, kids, slack):
        problems = [fork_problem(w0, kids, slack)]
        plan = plan_batch(problems, "bicrit-closed-form")
        assert plan.kernel_counts() == {KERNEL_FORK: 1}


class TestTriCritChainEquivalence:
    @given(st.lists(st.lists(weight_strategy, min_size=1, max_size=3),
                    min_size=1, max_size=2),
           st.floats(min_value=1.0, max_value=4.0),
           st.sampled_from([1e-5, 1e-4, 1e-3]))
    @settings(max_examples=6, deadline=None)
    def test_batch_matches_scalar_for_every_admissible_solver(self, batches,
                                                              slack, lambda0):
        problems = [tricrit_chain_problem(w, slack, lambda0) for w in batches]
        for name in ["auto"] + [s.name for s in admissible_solvers(problems[0])]:
            roundtrip(problems,
                      [tricrit_chain_problem(w, slack, lambda0)
                       for w in batches], name)

    @given(st.lists(st.floats(min_value=0.1, max_value=5.0),
                    min_size=1, max_size=4),
           st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=25, deadline=None)
    def test_subset_kernel_engages_and_floors_are_batched(self, weights, slack):
        problem = tricrit_chain_problem(weights, slack)
        plan = plan_batch([problem], "tricrit-chain-exact")
        assert plan.kernel_counts() == {KERNEL_TRICRIT_CHAIN: 1}
        # The batched floors must equal the context's scalar bisections.
        fresh = tricrit_chain_problem(weights, slack)
        floors = batch_reexecution_floors([fresh])[0]
        reference = tricrit_chain_problem(weights, slack).context()
        for task, floor in floors.items():
            assert floor == pytest.approx(reference.reexecution_floor(task),
                                          rel=1e-9, abs=1e-12)


class TestSeriesParallelFallback:
    @given(st.integers(min_value=3, max_value=9),
           st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=0.8, max_value=3.0))
    @settings(max_examples=15, deadline=None)
    def test_sp_instances_fall_back_and_match(self, size, seed, slack):
        problem = sp_problem(size, seed, slack)
        ctx = SolverContext.for_problem(problem)
        plan = plan_batch([problem], "auto")
        if ctx.is_single_processor or ctx.is_fork:
            return  # degenerate SP draw handled by a vectorized kernel
        assert plan.kernel_counts() == {KERNEL_SCALAR: 1}
        scalar = solve(sp_problem(size, seed, slack))
        [batch] = solve_batch([sp_problem(size, seed, slack)])
        assert_results_match(scalar, batch, problem)


class TestMixedAutoDispatch:
    @given(st.lists(weights_strategy, min_size=1, max_size=2),
           st.lists(st.lists(weight_strategy, min_size=1, max_size=3),
                    min_size=1, max_size=2),
           st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=6, deadline=None)
    def test_auto_choice_and_results_match_across_kinds(self, chain_batches,
                                                        tricrit_batches, slack):
        def build():
            problems = [chain_problem(w, slack) for w in chain_batches]
            problems += [fork_problem(2.0, w, slack) for w in chain_batches]
            problems += [tricrit_chain_problem(w, slack)
                         for w in tricrit_batches]
            problems.append(sp_problem(5, 42, slack))
            return problems

        scalar = [solve(p) for p in build()]
        fresh = build()
        batch = solve_batch(fresh)
        for s, b, p in zip(scalar, batch, fresh):
            assert_results_match(s, b, p)
            assert b.metadata["dispatch"]["solver"] \
                == s.metadata["dispatch"]["solver"]
            assert b.metadata["dispatch"]["auto"] is True


# ----------------------------------------------------------------------
# non-property behaviour of the batch front door
# ----------------------------------------------------------------------
class TestBatchFrontDoor:
    def test_named_solver_validates_like_scalar(self):
        problem = fork_problem(2.0, [1.0, 3.0], 2.0)
        with pytest.raises(InadmissibleSolverError):
            solve(problem, solver="tricrit-chain-exact")
        with pytest.raises(InadmissibleSolverError):
            solve_batch([problem], solver="tricrit-chain-exact")

    def test_unknown_solver_raises_like_scalar(self):
        problem = chain_problem([1.0, 2.0], 2.0)
        with pytest.raises(KeyError):
            solve_batch([problem], solver="no-such-solver")

    def test_options_force_scalar_fallback(self):
        problems = [chain_problem([1.0, 2.0, 3.0], 2.0) for _ in range(3)]
        plan = plan_batch(problems, "bicrit-closed-form", vectorize=False)
        assert plan.kernel_counts() == {KERNEL_SCALAR: 3}
        batch = solve_batch(problems, solver="bicrit-closed-form",
                            prefer_closed_form=True)
        scalar = [solve(p, solver="bicrit-closed-form",
                        prefer_closed_form=True) for p in problems]
        for s, b, p in zip(scalar, batch, problems):
            assert_results_match(s, b, p)

    def test_lazy_schedule_materialises_once(self):
        [result] = solve_batch([chain_problem([1.0, 2.0], 2.0)])
        assert isinstance(result, LazyScheduleResult)
        first = result.schedule
        assert first is result.schedule     # memoised, not rebuilt
        assert result.require_schedule() is first

    def test_lazy_metadata_equals_scalar_metadata(self):
        problem = chain_problem([1.0, 2.0, 3.0], 2.0)
        scalar = solve(problem, solver="bicrit-closed-form")
        [batch] = solve_batch([chain_problem([1.0, 2.0, 3.0], 2.0)],
                              solver="bicrit-closed-form")
        assert batch.metadata["dispatch"] == scalar.metadata["dispatch"]
        assert set(batch.metadata) == set(scalar.metadata)
        assert batch.metadata["route"] == scalar.metadata["route"]

    def test_results_preserve_input_order(self):
        chains = [chain_problem([float(i + 1)], 2.0) for i in range(4)]
        forks = [fork_problem(1.0, [float(i + 1)], 2.0) for i in range(4)]
        mixed = [p for pair in zip(chains, forks) for p in pair]
        results = solve_batch(mixed)
        for problem, result in zip(mixed, results):
            assert result.feasible
            route = result.metadata["route"]
            expected = "chain" if problem.mapping.is_single_processor() else "fork"
            assert route == expected

    def test_batch_is_feasible_matches_context(self):
        problems = [chain_problem([1.0, 2.0], 0.5),      # infeasible (tight)
                    chain_problem([1.0, 2.0], 2.0),
                    fork_problem(2.0, [1.0, 3.0], 2.0),
                    sp_problem(5, 7, 2.0)]
        verdicts = batch_is_feasible(problems)
        for problem, verdict in zip(problems, verdicts):
            fresh = BiCritProblem(problem.mapping, problem.platform,
                                  problem.deadline)
            assert bool(verdict) == SolverContext.for_problem(fresh).is_feasible

    def test_padded_tricrit_chain_admitted_like_scalar(self):
        # 23 mapped tasks but only 10 positive: every limit check counts
        # positive-weight tasks, so the instance is admissible through both
        # the scalar front door and the batch planner (which may still
        # vectorize it) -- and both agree on the optimum.
        weights = [1.0] * 10 + [0.0] * 13
        scalar = solve(tricrit_chain_problem(weights, 3.0),
                       solver="tricrit-chain-exact")
        plan = plan_batch([tricrit_chain_problem(weights, 3.0)],
                          "tricrit-chain-exact")
        assert plan.kernel_counts() == {KERNEL_TRICRIT_CHAIN: 1}
        [batch] = solve_batch([tricrit_chain_problem(weights, 3.0)],
                              solver="tricrit-chain-exact")
        assert scalar.status == batch.status == "optimal"
        assert batch.energy == pytest.approx(scalar.energy, rel=1e-9)

    def test_oversized_tricrit_chain_raises_like_scalar(self):
        # 23 positive-weight tasks genuinely exceed the enumeration limit:
        # scalar and batch dispatch must reject with the same admissibility
        # error (neither path silently truncates or falls back).
        weights = [1.0] * 23
        with pytest.raises(ValueError, match="positive-weight tasks, limit is"):
            solve(tricrit_chain_problem(weights, 3.0),
                  solver="tricrit-chain-exact")
        with pytest.raises(ValueError, match="positive-weight tasks, limit is"):
            solve_batch([tricrit_chain_problem(weights, 3.0)],
                        solver="tricrit-chain-exact")

    def test_infeasible_chain_status_matches(self):
        problem = chain_problem([4.0, 4.0], 0.5)   # needs speed > fmax
        scalar = solve(BiCritProblem(problem.mapping, problem.platform,
                                     problem.deadline))
        [batch] = solve_batch([problem])
        assert scalar.status == batch.status == "infeasible"
        assert batch.schedule is None
        assert batch.metadata["message"] == scalar.metadata["message"]
