"""Tests of the TRI-CRIT chain solvers (paper Section III, linear chains)."""

from __future__ import annotations

import math

import pytest

from repro.continuous.tricrit_chain import (
    reexecution_speed_floor,
    solve_given_reexec_set,
    solve_tricrit_chain_exact,
    solve_tricrit_chain_greedy,
)
from repro.core.problems import TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


def chain_problem(weights, slack, *, lambda0=1e-4, frel=None) -> TriCritProblem:
    graph = generators.chain(weights)
    model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0, frel=frel)
    platform = Platform(1, ContinuousSpeeds(0.1, 1.0), reliability_model=model)
    deadline = slack * graph.total_weight()  # fmax = 1
    return TriCritProblem(Mapping.single_processor(graph), platform, deadline)


class TestFixedSubsetSubproblem:
    def test_empty_subset_is_uniform_at_frel_when_deadline_loose(self):
        problem = chain_problem([1.0, 2.0], slack=5.0)
        model = problem.reliability()
        sol = solve_given_reexec_set([1.0, 2.0], ["T0", "T1"], problem.deadline, (),
                                     fmin=0.1, fmax=1.0, model=model)
        assert sol.feasible
        # With frel = fmax = 1 a single execution must run at full speed.
        assert sol.speeds["T0"] == pytest.approx(1.0)
        assert sol.speeds["T1"] == pytest.approx(1.0)

    def test_reexecution_lowers_speed_floor(self):
        problem = chain_problem([1.0, 2.0], slack=5.0)
        model = problem.reliability()
        sol = solve_given_reexec_set([1.0, 2.0], ["T0", "T1"], problem.deadline,
                                     ("T1",), fmin=0.1, fmax=1.0, model=model)
        assert sol.feasible
        assert "T1" in sol.reexecuted
        assert sol.speeds["T1"] < 1.0
        # The re-executed task's two executions fit in its reported duration.
        assert sol.durations["T1"] == pytest.approx(2 * 2.0 / sol.speeds["T1"])

    def test_infeasible_when_too_many_reexecutions(self):
        problem = chain_problem([1.0, 1.0, 1.0], slack=1.05)
        model = problem.reliability()
        sol = solve_given_reexec_set([1.0, 1.0, 1.0], ["T0", "T1", "T2"],
                                     problem.deadline, ("T0", "T1", "T2"),
                                     fmin=0.1, fmax=1.0, model=model)
        assert not sol.feasible
        assert sol.energy == math.inf

    def test_unknown_task_rejected(self):
        problem = chain_problem([1.0], slack=2.0)
        with pytest.raises(ValueError):
            solve_given_reexec_set([1.0], ["T0"], problem.deadline, ("T9",),
                                   fmin=0.1, fmax=1.0, model=problem.reliability())

    def test_reexecution_speed_floor_properties(self):
        model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-3)
        floor = reexecution_speed_floor(model, 5.0, 0.1)
        assert 0.1 <= floor <= 1.0
        assert model.reexecution_ok(5.0, floor, floor, tol=1e-9)


class TestExactSolver:
    def test_tight_deadline_forces_no_reexecution(self):
        problem = chain_problem([1.0, 2.0, 1.0], slack=1.0)
        result = solve_tricrit_chain_exact(problem)
        assert result.feasible
        assert result.metadata["reexecuted"] == []
        assert result.energy == pytest.approx(4.0)  # everything at fmax=1

    def test_loose_deadline_makes_reexecution_beneficial(self):
        problem = chain_problem([1.0, 2.0, 1.0], slack=4.0)
        result = solve_tricrit_chain_exact(problem)
        no_reexec = solve_given_reexec_set(
            [1.0, 2.0, 1.0], ["T0", "T1", "T2"], problem.deadline, (),
            fmin=0.1, fmax=1.0, model=problem.reliability(),
        )
        assert result.energy < no_reexec.energy - 1e-9
        assert len(result.metadata["reexecuted"]) >= 1

    def test_schedule_is_feasible_and_reliable(self):
        problem = chain_problem([2.0, 1.0, 3.0], slack=3.0)
        result = solve_tricrit_chain_exact(problem)
        report = problem.evaluate(result.require_schedule())
        assert report.feasible

    def test_subset_count_is_exponential(self):
        problem = chain_problem([1.0] * 5, slack=2.0)
        result = solve_tricrit_chain_exact(problem)
        assert result.metadata["subsets_evaluated"] == 2 ** 5

    def test_max_tasks_guard(self):
        problem = chain_problem([1.0] * 6, slack=2.0)
        with pytest.raises(ValueError):
            solve_tricrit_chain_exact(problem, max_tasks=4)

    def test_requires_single_processor_mapping(self, tricrit_fork_problem):
        with pytest.raises(ValueError):
            solve_tricrit_chain_exact(tricrit_fork_problem)


class TestGreedyStrategy:
    def test_greedy_matches_exact_on_small_chains(self):
        for slack in (1.5, 2.5, 4.0):
            for seed in range(3):
                weights = list(generators.random_weights(5, seed=seed, low=1.0, high=5.0))
                problem = chain_problem(weights, slack=slack)
                exact = solve_tricrit_chain_exact(problem)
                greedy = solve_tricrit_chain_greedy(problem)
                assert greedy.feasible
                # The paper's strategy is optimal on chains; allow a tiny
                # numerical tolerance plus rare greedy ties.
                assert greedy.energy <= exact.energy * 1.02 + 1e-9

    def test_greedy_never_beats_exact(self):
        problem = chain_problem([1.0, 2.0, 3.0, 1.0], slack=3.0)
        exact = solve_tricrit_chain_exact(problem)
        greedy = solve_tricrit_chain_greedy(problem)
        assert greedy.energy >= exact.energy - 1e-9

    def test_greedy_schedule_feasible(self):
        problem = chain_problem([1.0, 4.0, 2.0], slack=2.5)
        greedy = solve_tricrit_chain_greedy(problem)
        report = problem.evaluate(greedy.require_schedule())
        assert report.feasible

    def test_greedy_reports_evaluations(self):
        problem = chain_problem([1.0, 2.0], slack=3.0)
        greedy = solve_tricrit_chain_greedy(problem)
        assert greedy.metadata["subsets_evaluated"] >= 1

    def test_lower_frel_reduces_energy(self):
        tight_rel = chain_problem([1.0, 2.0, 1.0], slack=3.0, frel=None)  # frel = fmax
        relaxed_rel = chain_problem([1.0, 2.0, 1.0], slack=3.0, frel=0.6)
        e_tight = solve_tricrit_chain_greedy(tight_rel).energy
        e_relaxed = solve_tricrit_chain_greedy(relaxed_rel).energy
        assert e_relaxed <= e_tight + 1e-9
