"""Tests of series-parallel recognition, decomposition and reconstruction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import generators
from repro.dag.series_parallel import (
    NotSeriesParallelError,
    SPLeaf,
    SPParallel,
    SPSeries,
    decompose,
    is_series_parallel,
    sp_depth,
    sp_leaves,
    sp_tree_to_taskgraph,
)
from repro.dag.taskgraph import TaskGraph


class TestSPTreeConstruction:
    def test_leaf_validation(self):
        with pytest.raises(ValueError):
            SPLeaf("a", -1.0)

    def test_series_and_parallel_need_two_children(self):
        leaf = SPLeaf("a", 1.0)
        with pytest.raises(ValueError):
            SPSeries((leaf,))
        with pytest.raises(ValueError):
            SPParallel((leaf,))

    def test_tree_to_taskgraph_chain(self):
        tree = SPSeries((SPLeaf("a", 1.0), SPLeaf("b", 2.0), SPLeaf("c", 3.0)))
        g = sp_tree_to_taskgraph(tree)
        assert g.is_chain()
        assert g.chain_order() == ["a", "b", "c"]

    def test_tree_to_taskgraph_fork(self):
        tree = SPSeries((SPLeaf("s", 1.0),
                         SPParallel((SPLeaf("a", 1.0), SPLeaf("b", 2.0)))))
        g = sp_tree_to_taskgraph(tree)
        ok, source = g.is_fork()
        assert ok and source == "s"

    def test_tree_to_taskgraph_fork_join(self):
        tree = SPSeries((
            SPLeaf("s", 1.0),
            SPParallel((SPLeaf("a", 1.0), SPLeaf("b", 2.0))),
            SPLeaf("t", 1.0),
        ))
        g = sp_tree_to_taskgraph(tree)
        assert set(g.edges()) == {("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")}

    def test_duplicate_ids_rejected(self):
        tree = SPSeries((SPLeaf("a", 1.0), SPLeaf("a", 2.0)))
        with pytest.raises(ValueError, match="duplicate"):
            sp_tree_to_taskgraph(tree)

    def test_leaves_and_depth(self):
        tree = SPSeries((SPLeaf("a", 1.0),
                         SPParallel((SPLeaf("b", 1.0), SPLeaf("c", 1.0)))))
        assert [l.task_id for l in sp_leaves(tree)] == ["a", "b", "c"]
        assert sp_depth(tree) == 3
        assert sp_depth(SPLeaf("x", 1.0)) == 1


class TestDecomposition:
    def test_single_task(self):
        g = TaskGraph({"a": 2.0})
        tree = decompose(g)
        assert isinstance(tree, SPLeaf)
        assert tree.weight == 2.0

    def test_chain_decomposes_to_series(self):
        g = generators.chain([1.0, 2.0, 3.0])
        tree = decompose(g)
        assert isinstance(tree, SPSeries)
        assert len(sp_leaves(tree)) == 3

    def test_independent_tasks_decompose_to_parallel(self):
        g = TaskGraph({"a": 1.0, "b": 2.0, "c": 3.0})
        tree = decompose(g)
        assert isinstance(tree, SPParallel)
        assert len(tree.children) == 3

    def test_fork_decomposes(self):
        g = generators.fork(1.0, [2.0, 3.0])
        tree = decompose(g)
        assert isinstance(tree, SPSeries)
        assert isinstance(tree.children[0], SPLeaf)
        assert isinstance(tree.children[1], SPParallel)

    def test_fork_join_decomposes(self):
        g = generators.fork_join(1.0, [2.0, 3.0], 4.0)
        tree = decompose(g)
        assert isinstance(tree, SPSeries)
        assert len(tree.children) == 3

    def test_non_sp_graph_rejected(self):
        # The "N" graph: a->c, a->d, b->d is the classic non-SP witness.
        g = TaskGraph({"a": 1, "b": 1, "c": 1, "d": 1},
                      [("a", "c"), ("a", "d"), ("b", "d")])
        assert not is_series_parallel(g)
        with pytest.raises(NotSeriesParallelError):
            decompose(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(NotSeriesParallelError):
            decompose(TaskGraph({}))

    def test_roundtrip_preserves_graph(self):
        for seed in range(6):
            g = generators.random_series_parallel(8, seed=seed)
            tree = decompose(g)
            rebuilt = sp_tree_to_taskgraph(tree)
            assert rebuilt == g

    def test_trees_are_series_parallel(self):
        # An out-tree is SP under the node-composition semantics.
        g = generators.out_tree(3, 2)
        assert is_series_parallel(g)

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_random_sp_roundtrip_property(self, n, seed):
        g = generators.random_series_parallel(n, seed=seed)
        tree = decompose(g)
        assert sp_tree_to_taskgraph(tree) == g
        assert len(sp_leaves(tree)) == n
