"""Tests of the two TRI-CRIT heuristic families and their combination."""

from __future__ import annotations

import pytest

from repro.continuous.exhaustive import best_known_tricrit, solve_tricrit_exhaustive
from repro.continuous.heuristics import (
    TRICRIT_HEURISTICS,
    best_of_heuristics,
    heuristic_energy_gain,
    heuristic_parallel_slack,
    solve_tricrit_no_reexec,
    solve_with_reexec_set,
)
from repro.core.problems import TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


def make_problem(graph, num_processors, slack, *, lambda0=1e-4) -> TriCritProblem:
    model = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0)
    platform = Platform(num_processors, ContinuousSpeeds(0.1, 1.0),
                        reliability_model=model)
    mapping = critical_path_mapping(graph, num_processors, fmax=1.0).mapping
    augmented = mapping.augmented_graph()
    finish = {}
    for t in augmented.topological_order():
        s = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t)
    deadline = slack * max(finish.values())
    return TriCritProblem(mapping, platform, deadline)


@pytest.fixture
def layered_problem() -> TriCritProblem:
    return make_problem(generators.random_layered_dag(3, 3, seed=5), 3, slack=2.0)


class TestRestrictedSolver:
    def test_no_reexec_solution_is_reliable(self, layered_problem):
        result = solve_tricrit_no_reexec(layered_problem)
        assert result.feasible
        report = layered_problem.evaluate(result.require_schedule())
        assert report.feasible

    def test_reexec_set_recorded_and_applied(self, layered_problem):
        task = next(t for t in layered_problem.graph.tasks()
                    if layered_problem.graph.weight(t) > 0)
        result = solve_with_reexec_set(layered_problem, [task])
        assert result.feasible
        schedule = result.require_schedule()
        assert schedule.decisions[task].is_reexecuted
        assert str(task) in result.metadata["reexecuted"]
        report = layered_problem.evaluate(schedule)
        assert report.feasible

    def test_infeasible_reexec_set(self):
        problem = make_problem(generators.chain([2.0, 2.0]), 1, slack=1.05)
        all_tasks = list(problem.graph.tasks())
        result = solve_with_reexec_set(problem, all_tasks)
        assert not result.feasible


class TestHeuristicFamilies:
    def test_both_families_feasible_and_never_worse_than_no_reexec(self, layered_problem):
        base = solve_tricrit_no_reexec(layered_problem)
        a = heuristic_energy_gain(layered_problem)
        b = heuristic_parallel_slack(layered_problem)
        for result in (a, b):
            assert result.feasible
            assert result.energy <= base.energy + 1e-9
            report = layered_problem.evaluate(result.require_schedule())
            assert report.feasible

    def test_best_of_takes_the_minimum(self, layered_problem):
        a = heuristic_energy_gain(layered_problem)
        b = heuristic_parallel_slack(layered_problem)
        best = best_of_heuristics(layered_problem)
        assert best.energy == pytest.approx(min(a.energy, b.energy), rel=1e-9)
        assert best.metadata["winner"] in (a.solver, b.solver)

    def test_heuristics_close_to_exhaustive_on_small_instances(self):
        problem = make_problem(generators.random_layered_dag(2, 3, seed=11), 3, slack=2.5)
        best = best_of_heuristics(problem)
        reference = solve_tricrit_exhaustive(problem)
        assert best.energy <= reference.energy * 1.10 + 1e-9
        assert best.energy >= reference.energy - 1e-6

    def test_chain_heuristic_on_chain_instances(self):
        problem = make_problem(generators.random_chain(6, seed=3), 1, slack=2.5)
        a = heuristic_energy_gain(problem)
        reference = solve_tricrit_exhaustive(problem)
        assert a.energy <= reference.energy * 1.10 + 1e-9

    def test_slack_heuristic_on_fork_instances(self):
        problem = make_problem(generators.random_fork(5, seed=4), 6, slack=2.5)
        b = heuristic_parallel_slack(problem)
        reference = solve_tricrit_exhaustive(problem)
        assert b.energy <= reference.energy * 1.10 + 1e-9

    def test_registry_contains_all_heuristics(self):
        assert set(TRICRIT_HEURISTICS) == {"no_reexec", "energy_gain",
                                           "parallel_slack", "best_of"}

    def test_infeasible_instance_propagates(self):
        problem = make_problem(generators.chain([4.0, 4.0]), 1, slack=0.9)
        result = heuristic_energy_gain(problem)
        assert not result.feasible


class TestExhaustive:
    def test_exhaustive_subset_count(self):
        problem = make_problem(generators.random_chain(4, seed=1), 1, slack=2.0)
        result = solve_tricrit_exhaustive(problem)
        assert result.metadata["subsets_evaluated"] == 2 ** 4
        assert result.status == "optimal"

    def test_exhaustive_guard(self):
        problem = make_problem(generators.random_chain(8, seed=1), 1, slack=2.0)
        with pytest.raises(ValueError):
            solve_tricrit_exhaustive(problem, max_tasks=5)

    def test_best_known_routes_through_three_tiers(self):
        small = make_problem(generators.random_chain(4, seed=2), 1, slack=2.0)
        assert best_known_tricrit(small).solver == "tricrit-exhaustive"
        medium = make_problem(generators.random_chain(14, seed=2), 1, slack=2.0)
        assert best_known_tricrit(medium,
                                  exhaustive_limit=6).solver == "tricrit-pruned"
        large = make_problem(generators.random_chain(14, seed=2), 1, slack=2.0)
        assert "heuristic" in best_known_tricrit(large, exhaustive_limit=6,
                                                 pruned_limit=8).solver

    def test_best_known_pruned_tier_matches_exhaustive(self):
        problem = make_problem(generators.random_chain(9, seed=4), 1, slack=1.8)
        exact = solve_tricrit_exhaustive(problem)
        pruned = best_known_tricrit(problem, exhaustive_limit=4)
        assert pruned.solver == "tricrit-pruned"
        assert pruned.energy == pytest.approx(exact.energy, rel=1e-9)

    def test_exhaustive_at_least_as_good_as_heuristics(self):
        problem = make_problem(generators.random_fork(4, seed=6), 5, slack=2.5)
        exact = solve_tricrit_exhaustive(problem)
        best = best_of_heuristics(problem)
        assert exact.energy <= best.energy + 1e-6
