"""Fault-injection harness for the distributed-campaign tests.

:class:`ChaosProxy` is a tiny threaded TCP proxy that sits between a
coordinator and one ``repro serve`` worker and misbehaves on demand:

* ``kill``    -- wait for request bytes, then slam the connection shut with
  an RST (a worker dying mid-request);
* ``delay``   -- stall for a configurable time before even connecting
  upstream (a hung worker; trips the client's lease timeout);
* ``garbage`` -- answer the request with bytes that are not HTTP at all
  (a corrupted reply);
* ``error``   -- answer with a synthetic ``HTTP/1.1 500`` (a 5xx burst
  without touching the worker).

Faults are queued with :meth:`ChaosProxy.fail_next` and consumed one per
connection in FIFO order; connections with no queued fault are proxied
byte-for-byte in both directions.  The proxy binds an ephemeral port, so
tests point a :class:`repro.campaign.distributed.WorkerClient` at
``proxy.port`` while the real worker listens elsewhere.  Use it as a
context manager to guarantee the sockets die with the test.
"""

from __future__ import annotations

import collections
import select
import socket
import struct
import threading
import time

__all__ = ["ChaosProxy", "MODES"]

MODES = ("pass", "kill", "delay", "garbage", "error")

_GARBAGE = b"\x00\xfe\xfanot-http-at-all\r\n\r\n\x13\x37"
_ERROR_BODY = b'{"error": {"code": "chaos", "message": "injected 5xx"}}'
_ERROR_REPLY = (b"HTTP/1.1 500 Internal Server Error\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(_ERROR_BODY)).encode() +
                b"\r\nConnection: close\r\n\r\n" + _ERROR_BODY)


class ChaosProxy:
    """A misbehaving TCP proxy in front of one upstream server."""

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 host: str = "127.0.0.1") -> None:
        self.upstream = (upstream_host, upstream_port)
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.1)
        self.host = host
        self.port = self._listener.getsockname()[1]
        self._faults: collections.deque[tuple[str, float]] = collections.deque()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self.connections = 0
        self.injected = collections.Counter()
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               name="chaos-accept", daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- fault scheduling -----------------------------------------------
    def fail_next(self, mode: str, count: int = 1, *,
                  delay: float = 1.0) -> None:
        """Queue ``count`` faults of ``mode`` for the next connections."""
        if mode not in MODES:
            raise ValueError(f"unknown chaos mode {mode!r}; pick from {MODES}")
        with self._lock:
            for _ in range(count):
                self._faults.append((mode, delay))

    def pending_faults(self) -> int:
        with self._lock:
            return len(self._faults)

    def _next_fault(self) -> tuple[str, float]:
        with self._lock:
            return self._faults.popleft() if self._faults else ("pass", 0.0)

    # -- proxy machinery ------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(target=self._handle, args=(client,),
                                      name="chaos-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _handle(self, client: socket.socket) -> None:
        mode, delay = self._next_fault()
        self.connections += 1
        if mode != "pass":
            self.injected[mode] += 1
        try:
            if mode == "kill":
                self._await_request_bytes(client)
                # SO_LINGER(on, 0) turns close() into an RST: the client sees
                # a reset mid-request, exactly like a SIGKILLed worker.
                client.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                  struct.pack("ii", 1, 0))
                return
            if mode == "garbage":
                self._await_request_bytes(client)
                client.sendall(_GARBAGE)
                return
            if mode == "error":
                self._await_request_bytes(client)
                client.sendall(_ERROR_REPLY)
                return
            if mode == "delay":
                # Stall without answering; the client's request timeout
                # fires first in any sane test configuration.
                deadline = time.monotonic() + delay
                while not self._stop.is_set() \
                        and time.monotonic() < deadline:
                    time.sleep(0.02)
                return
            self._pump(client)
        except OSError:
            pass
        finally:
            try:
                client.close()
            except OSError:
                pass

    def _await_request_bytes(self, client: socket.socket,
                             timeout: float = 5.0) -> bytes:
        """Block until the client sent something, so the fault lands
        *mid-request* rather than on an idle connection."""
        client.settimeout(timeout)
        try:
            return client.recv(65536)
        except (socket.timeout, OSError):
            return b""

    def _pump(self, client: socket.socket) -> None:
        upstream = socket.create_connection(self.upstream, timeout=5.0)
        try:
            pair = {client: upstream, upstream: client}
            for sock in pair:
                sock.setblocking(False)
            while not self._stop.is_set():
                readable, _, _ = select.select(list(pair), [], [], 0.1)
                for sock in readable:
                    try:
                        data = sock.recv(65536)
                    except (BlockingIOError, InterruptedError):
                        continue
                    except OSError:
                        return
                    if not data:
                        return
                    pair[sock].sendall(data)
        finally:
            try:
                upstream.close()
            except OSError:
                pass

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
