"""End-to-end integration tests across subsystems.

Each test exercises a full pipeline -- generate a workload, map it, solve the
energy problem under some speed model, validate/simulate the resulting
schedule -- and checks the cross-model orderings the paper's theory predicts:

    continuous optimum <= VDD-HOPPING optimum <= DISCRETE optimum
    BI-CRIT optimum   <= TRI-CRIT optimum (reliability costs energy)
    global optimum    <= local-reclaiming baseline <= no-DVFS baseline
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import local_slack_reclaiming, no_dvfs, uniform_slowdown
from repro.continuous import (
    best_of_heuristics,
    solve_bicrit_continuous,
    solve_tricrit_exhaustive,
)
from repro.core import (
    BiCritProblem,
    ContinuousSpeeds,
    DiscreteSpeeds,
    ReliabilityModel,
    TriCritProblem,
    VddHoppingSpeeds,
)
from repro.dag import generators
from repro.discrete import (
    solve_bicrit_discrete_milp,
    solve_bicrit_incremental_approx,
    solve_bicrit_vdd_lp,
)
from repro.platform import Mapping, Platform, critical_path_mapping
from repro.simulation import run_monte_carlo, simulate_schedule

MODES = (0.2, 0.4, 0.6, 0.8, 1.0)


def build_problems(graph, p, slack, *, lambda0=1e-4):
    """BiCrit problems under the three speed models plus a TriCrit variant."""
    reliability = ReliabilityModel(fmin=MODES[0], fmax=MODES[-1], lambda0=lambda0)
    mapping = (Mapping.single_processor(graph) if p == 1
               else critical_path_mapping(graph, p, fmax=1.0).mapping)
    augmented = mapping.augmented_graph()
    finish = {}
    for t in augmented.topological_order():
        s = max((finish[q] for q in augmented.predecessors(t)), default=0.0)
        finish[t] = s + graph.weight(t)
    deadline = slack * max(finish.values())

    def platform(speed_model):
        return Platform(p, speed_model, reliability_model=reliability)

    continuous = BiCritProblem(mapping, platform(ContinuousSpeeds(MODES[0], MODES[-1])),
                               deadline)
    vdd = BiCritProblem(mapping, platform(VddHoppingSpeeds(MODES)), deadline)
    discrete = BiCritProblem(mapping, platform(DiscreteSpeeds(MODES)), deadline)
    tricrit = TriCritProblem(mapping, platform(ContinuousSpeeds(MODES[0], MODES[-1])),
                             deadline)
    return continuous, vdd, discrete, tricrit


class TestSpeedModelHierarchy:
    @pytest.mark.parametrize("maker,p", [
        (lambda seed: generators.random_chain(5, seed=seed), 1),
        (lambda seed: generators.random_fork(4, seed=seed), 5),
        (lambda seed: generators.random_layered_dag(3, 3, seed=seed), 3),
    ])
    def test_continuous_le_vdd_le_discrete(self, maker, p):
        graph = maker(17)
        continuous, vdd, discrete, _ = build_problems(graph, p, slack=1.7)
        e_cont = solve_bicrit_continuous(continuous).energy
        e_vdd = solve_bicrit_vdd_lp(vdd).energy
        e_disc = solve_bicrit_discrete_milp(discrete).energy
        assert e_cont <= e_vdd * (1 + 1e-6)
        assert e_vdd <= e_disc * (1 + 1e-6)

    def test_incremental_approx_between_continuous_and_bound(self):
        graph = generators.random_chain(6, seed=21)
        continuous, _, discrete, _ = build_problems(graph, 1, slack=1.9)
        from repro.core.speeds import IncrementalSpeeds

        inc_problem = BiCritProblem(
            discrete.mapping,
            discrete.platform.with_speed_model(IncrementalSpeeds(0.2, 1.0, 0.2)),
            discrete.deadline)
        e_cont = solve_bicrit_continuous(continuous).energy
        approx = solve_bicrit_incremental_approx(inc_problem)
        assert e_cont - 1e-9 <= approx.energy <= 4.0 * e_cont + 1e-9  # (1+delta/fmin)^2 = 4

    def test_bicrit_le_tricrit(self):
        graph = generators.random_layered_dag(3, 2, seed=23)
        continuous, _, _, tricrit = build_problems(graph, 2, slack=2.2)
        e_bicrit = solve_bicrit_continuous(continuous).energy
        e_tricrit = best_of_heuristics(tricrit).energy
        assert e_bicrit <= e_tricrit + 1e-9


class TestBaselineOrdering:
    def test_global_le_local_le_nodvfs(self):
        graph = generators.random_layered_dag(4, 3, seed=29)
        continuous, _, _, _ = build_problems(graph, 3, slack=1.8)
        e_opt = solve_bicrit_continuous(continuous).energy
        e_local = local_slack_reclaiming(continuous).energy
        e_uniform = uniform_slowdown(continuous).energy
        e_max = no_dvfs(continuous).energy
        assert e_opt <= e_local + 1e-6
        assert e_opt <= e_uniform + 1e-6
        assert e_local <= e_max + 1e-9
        assert e_uniform <= e_max + 1e-9


class TestSolveSimulateRoundtrip:
    def test_tricrit_schedule_survives_simulation(self):
        graph = generators.random_chain(5, seed=31)
        _, _, _, tricrit = build_problems(graph, 1, slack=2.5, lambda0=1e-3)
        result = solve_tricrit_exhaustive(tricrit)
        schedule = result.require_schedule()
        assert tricrit.evaluate(schedule).feasible
        # A fault-free worst-case run (no early skip of the second execution)
        # reproduces the analytic makespan; the normal runtime behaviour can
        # only finish earlier and spend less energy.
        worst_case = simulate_schedule(schedule,
                                       skip_second_execution_on_success=False)
        assert worst_case.makespan == pytest.approx(schedule.makespan())
        no_fault = simulate_schedule(schedule)
        assert no_fault.makespan <= schedule.makespan() + 1e-9
        assert no_fault.energy <= schedule.energy() + 1e-9
        # Monte-Carlo reliability matches the analytic product within noise.
        mc = run_monte_carlo(schedule, trials=1500, seed=5)
        assert mc.within_confidence()
        # The reliability is at least the per-task threshold product.
        model = tricrit.reliability()
        threshold_product = 1.0
        for t in graph.tasks():
            threshold_product *= model.threshold(graph.weight(t))
        assert mc.analytic_reliability >= threshold_product - 1e-9

    def test_vdd_schedule_simulation(self):
        graph = generators.random_fork(4, seed=37)
        _, vdd, _, _ = build_problems(graph, 5, slack=1.8)
        result = solve_bicrit_vdd_lp(vdd)
        schedule = result.require_schedule()
        sim = simulate_schedule(schedule)
        assert sim.success
        assert sim.makespan <= vdd.deadline * (1 + 1e-6)
        assert sim.energy == pytest.approx(schedule.energy(), rel=1e-9)


class TestEndToEndProperty:
    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=1.2, max_value=3.0))
    @settings(max_examples=10, deadline=None)
    def test_random_chain_pipeline(self, seed, slack):
        graph = generators.random_chain(5, seed=seed)
        continuous, vdd, discrete, _ = build_problems(graph, 1, slack=slack)
        e_cont = solve_bicrit_continuous(continuous).energy
        vdd_result = solve_bicrit_vdd_lp(vdd)
        e_disc = solve_bicrit_discrete_milp(discrete).energy
        assert e_cont <= vdd_result.energy * (1 + 1e-6)
        assert vdd_result.energy <= e_disc * (1 + 1e-6)
        schedule = vdd_result.require_schedule()
        assert schedule.is_feasible(vdd.deadline, deadline_tol=1e-5)
