"""Tests of the numerical convex solver for general mapped DAGs."""

from __future__ import annotations

import math

import pytest

from repro.continuous.closed_form import chain_bicrit, fork_energy, series_parallel_bicrit
from repro.continuous.convex import solve_bicrit_convex, solve_bicrit_continuous_dag
from repro.core.problems import BiCritProblem
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.dag.taskgraph import TaskGraph
from repro.platform.list_scheduling import critical_path_mapping
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform


WIDE = Platform(16, ContinuousSpeeds(0.001, 100.0))


class TestAgainstClosedForms:
    def test_chain(self):
        graph = generators.chain([1.0, 2.0, 3.0])
        mapping = Mapping.single_processor(graph)
        result = solve_bicrit_convex(mapping, WIDE, 12.0)
        expected = chain_bicrit([1.0, 2.0, 3.0], 12.0).energy
        assert result.energy == pytest.approx(expected, rel=1e-4)
        assert result.status in ("optimal", "feasible")

    def test_fork(self):
        graph = generators.fork(2.0, [1.0, 3.0, 2.0])
        mapping = Mapping.one_task_per_processor(graph)
        result = solve_bicrit_convex(mapping, WIDE, 5.0)
        assert result.energy == pytest.approx(fork_energy(2.0, [1.0, 3.0, 2.0], 5.0),
                                              rel=1e-4)

    def test_random_series_parallel(self):
        graph = generators.random_series_parallel(9, seed=3)
        mapping = Mapping.one_task_per_processor(graph)
        deadline = 1.8 * graph.critical_path_weight()
        result = solve_bicrit_convex(mapping, WIDE, deadline)
        expected = series_parallel_bicrit(graph, deadline).energy
        assert result.energy == pytest.approx(expected, rel=1e-3)

    @pytest.mark.parametrize("method", ["slsqp", "trust-constr"])
    def test_both_methods_agree(self, method):
        graph = generators.fork(2.0, [1.0, 3.0])
        mapping = Mapping.one_task_per_processor(graph)
        result = solve_bicrit_convex(mapping, WIDE, 4.0, method=method)
        assert result.energy == pytest.approx(fork_energy(2.0, [1.0, 3.0], 4.0), rel=1e-3)


class TestConstraintsAndBounds:
    def test_solution_meets_deadline_on_mapped_dag(self):
        graph = generators.random_layered_dag(4, 3, seed=7)
        platform = Platform(3, ContinuousSpeeds(0.1, 1.0))
        mapping = critical_path_mapping(graph, 3, fmax=1.0).mapping
        deadline = 1.6 * critical_path_mapping(graph, 3, fmax=1.0).makespan
        result = solve_bicrit_convex(mapping, platform, deadline)
        assert result.feasible
        # Recompute the makespan from the durations on the augmented graph.
        augmented = mapping.augmented_graph()
        finish = {}
        for t in augmented.topological_order():
            start = max((finish[p] for p in augmented.predecessors(t)), default=0.0)
            finish[t] = start + result.durations[t]
        assert max(finish.values()) <= deadline * (1.0 + 1e-5)

    def test_speed_bounds_respected(self):
        graph = generators.chain([2.0, 2.0])
        platform = Platform(1, ContinuousSpeeds(0.4, 1.0))
        mapping = Mapping.single_processor(graph)
        result = solve_bicrit_convex(mapping, platform, 100.0)
        for t in graph.tasks():
            assert result.speeds[t] >= 0.4 - 1e-6
            assert result.speeds[t] <= 1.0 + 1e-6

    def test_per_task_speed_floor(self):
        graph = generators.chain([2.0, 2.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        mapping = Mapping.single_processor(graph)
        result = solve_bicrit_convex(mapping, platform, 20.0,
                                     min_speed={"T0": 0.9, "T1": 0.1})
        assert result.speeds["T0"] >= 0.9 - 1e-6

    def test_effective_weights_override(self):
        graph = generators.chain([2.0, 2.0])
        platform = Platform(1, ContinuousSpeeds(0.05, 2.0))
        mapping = Mapping.single_processor(graph)
        doubled = solve_bicrit_convex(mapping, platform, 10.0,
                                      effective_weights={"T0": 4.0, "T1": 2.0})
        expected = chain_bicrit([4.0, 2.0], 10.0).energy
        assert doubled.energy == pytest.approx(expected, rel=1e-4)

    def test_infeasible_detected(self):
        graph = generators.chain([10.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        mapping = Mapping.single_processor(graph)
        result = solve_bicrit_convex(mapping, platform, 5.0)
        assert result.status == "infeasible"
        assert result.energy == math.inf

    def test_zero_weight_tasks_are_contracted(self):
        graph = TaskGraph({"a": 1.0, "z": 0.0, "b": 2.0}, [("a", "z"), ("z", "b")])
        mapping = Mapping.single_processor(graph)
        result = solve_bicrit_convex(mapping, WIDE, 6.0)
        # Behaves exactly like the chain a->b.
        assert result.energy == pytest.approx(chain_bicrit([1.0, 2.0], 6.0).energy,
                                              rel=1e-4)
        assert result.durations["z"] == 0.0

    def test_invalid_arguments(self):
        graph = generators.chain([1.0])
        mapping = Mapping.single_processor(graph)
        with pytest.raises(ValueError):
            solve_bicrit_convex(mapping, WIDE, -1.0)
        with pytest.raises(ValueError):
            solve_bicrit_convex(mapping, WIDE, 1.0, min_speed=2.0, max_speed=1.0)
        with pytest.raises(ValueError):
            solve_bicrit_convex(mapping, WIDE, 1.0, method="nope")


class TestProblemWrapper:
    def test_solve_result_schedule_is_feasible(self):
        graph = generators.random_layered_dag(3, 3, seed=2)
        platform = Platform(3, ContinuousSpeeds(0.1, 1.0))
        mapping = critical_path_mapping(graph, 3, fmax=1.0).mapping
        deadline = 1.7 * critical_path_mapping(graph, 3, fmax=1.0).makespan
        problem = BiCritProblem(mapping, platform, deadline)
        result = solve_bicrit_continuous_dag(problem)
        assert result.feasible
        schedule = result.require_schedule()
        assert schedule.is_feasible(deadline, deadline_tol=1e-5)
        assert result.energy == pytest.approx(schedule.energy())

    def test_infeasible_problem_wrapper(self):
        graph = generators.chain([10.0])
        platform = Platform(1, ContinuousSpeeds(0.1, 1.0))
        problem = BiCritProblem(Mapping.single_processor(graph), platform, 5.0)
        result = solve_bicrit_continuous_dag(problem)
        assert result.status == "infeasible"
        assert result.schedule is None
