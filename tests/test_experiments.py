"""Smoke tests of the experiment harness (instances, runners, reporting).

The full experiments run under ``benchmarks/``; these tests run each
experiment with minimal parameters and check the structure and the headline
invariants of the produced rows.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    ascii_table,
    bicrit_problem,
    chain_suite,
    fork_suite,
    format_value,
    layered_suite,
    make_platform,
    mixed_suite,
    print_table,
    rows_to_table,
    run_convex_dag_experiment,
    run_fork_closed_form_experiment,
    run_incremental_approx_experiment,
    run_mapping_ablation_experiment,
    run_np_hardness_experiment,
    run_reliability_simulation_experiment,
    run_series_parallel_experiment,
    run_tricrit_chain_experiment,
    run_tricrit_fork_experiment,
    run_vdd_lp_experiment,
    series_parallel_suite,
    tricrit_problem,
)


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(3) == "3"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(0.000012345) == "1.2345e-05"
        assert format_value("abc") == "abc"

    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["a", 1.0], ["bbb", 22.5]],
                            title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_rows_to_table_and_print(self, capsys):
        rows = [{"x": 1, "y": 2.0}, {"x": 3, "y": 4.5}]
        text = rows_to_table(rows)
        assert "x" in text and "4.5" in text
        print_table(rows, title="t")
        captured = capsys.readouterr().out
        assert "t" in captured
        assert rows_to_table([]) == "(no rows)"


class TestInstanceSuites:
    def test_suites_have_expected_families(self):
        assert all(s.family == "chain" for s in chain_suite(sizes=(4,), slacks=(2.0,)))
        assert all(s.family == "fork" for s in fork_suite(sizes=(3,), slacks=(2.0,)))
        assert all(s.family == "layered" for s in layered_suite(shapes=((3, 2),)))
        assert all(s.family == "series_parallel"
                   for s in series_parallel_suite(sizes=(5,)))
        families = {s.family for s in mixed_suite()}
        assert families == {"chain", "fork", "layered", "series_parallel"}

    def test_specs_are_reproducible(self):
        a = chain_suite(sizes=(5,), slacks=(2.0,), seed=3)[0]
        b = chain_suite(sizes=(5,), slacks=(2.0,), seed=3)[0]
        assert a.graph == b.graph
        assert a.describe()["tasks"] == 5

    def test_problem_builders(self):
        spec = chain_suite(sizes=(4,), slacks=(1.5,))[0]
        bi = bicrit_problem(spec)
        tri = tricrit_problem(spec, frel=0.8)
        assert bi.is_feasible_instance()
        assert tri.reliability().frel == pytest.approx(0.8)
        vdd = bicrit_problem(spec, speeds="vdd")
        assert vdd.platform.speed_model.is_discrete

    def test_make_platform_variants(self):
        assert make_platform(2, speeds="continuous").speed_model.fmax == pytest.approx(1.0)
        assert make_platform(2, speeds="discrete").speed_model.is_discrete
        assert make_platform(2, speeds="incremental", delta=0.2).speed_model.num_modes == 5
        with pytest.raises(ValueError):
            make_platform(2, speeds="warp-drive")


class TestExperimentRunners:
    def test_e1_fork_rows(self):
        rows = run_fork_closed_form_experiment(sizes=(2, 3), slacks=(2.0,))
        assert len(rows) == 2
        for row in rows:
            assert row["relative_gap"] < 1e-3
            assert row["formula_energy"] == pytest.approx(row["closed_form_energy"],
                                                          rel=1e-9)

    def test_e2_series_parallel_rows(self):
        rows = run_series_parallel_experiment(sizes=(4, 6), slacks=(2.0,))
        assert len(rows) == 2
        assert all(row["relative_gap"] < 1e-2 for row in rows)

    def test_e3_convex_dag_rows(self):
        rows = run_convex_dag_experiment(shapes=((3, 2),))
        row = rows[0]
        assert row["lower_bound"] <= row["convex_energy"] + 1e-6
        assert row["convex_energy"] <= row["no_dvfs"] + 1e-9
        assert row["saving_vs_no_dvfs"] > 0

    def test_e4_vdd_rows(self):
        rows = run_vdd_lp_experiment(chain_sizes=(4,), include_dag=False,
                                     compare_backends=True)
        row = rows[0]
        assert row["vdd_over_continuous"] >= 1.0 - 1e-9
        assert row["discrete_over_vdd"] >= 1.0 - 1e-9
        assert row["max_speeds_per_task"] <= 2
        assert row["backend_gap"] < 1e-6

    def test_e5_np_hardness(self):
        out = run_np_hardness_experiment(
            partition_instances=((3, 1, 1, 2, 2, 1), (8, 6, 5, 4)),
            scaling_sizes=(3, 4, 5, 6), lp_sizes=(4, 8, 16, 32))
        assert all(r["agree"] for r in out["reduction_rows"])
        assert out["exact_fit"]["exponential_fits_better"]
        assert not out["lp_fit"]["exponential_fits_better"]

    def test_e6_incremental_rows(self):
        rows = run_incremental_approx_experiment(deltas=(0.1,), Ks=(None, 2),
                                                 chain_size=5, include_dag=False)
        assert len(rows) == 2
        assert all(row["within_bound"] for row in rows)

    def test_e7_chain_rows(self):
        rows = run_tricrit_chain_experiment(sizes=(4,), slacks=(2.5,))
        row = rows[0]
        assert row["greedy_over_exact"] >= 1.0 - 1e-9
        assert row["greedy_over_exact"] < 1.1
        assert row["no_reexec_energy"] >= row["exact_energy"] - 1e-9

    def test_e8_fork_rows(self):
        rows = run_tricrit_fork_experiment(sizes=(2,), slacks=(2.5,))
        row = rows[0]
        assert row["poly_over_brute"] == pytest.approx(1.0, abs=1e-3)

    def test_e9_heuristic_rows(self):
        specs = mixed_suite(seed=2)[:2]
        rows = run_heuristic_rows = run_heuristic_comparison(specs)
        for row in rows:
            assert row["best_of"] <= row["energy_gain_h"] + 1e-9
            assert row["best_of"] <= row["parallel_slack_h"] + 1e-9
            assert row["best_of"] <= row["no_reexec"] + 1e-9

    def test_e10_vdd_rounding_rows(self):
        specs = mixed_suite(seed=2)[:1]
        rows = run_vdd_rounding(specs)
        for row in rows:
            assert row["feasible"]
            assert row["adaptation_loss"] >= -1e-6
            assert row["adaptation_loss"] < 0.5

    def test_e11_reliability_rows(self):
        rows = run_reliability_simulation_experiment(chain_size=4, trials=600,
                                                     speed_fractions=(1.0, 0.5))
        slow = rows[-1]
        fast = rows[0]
        assert slow["single_analytic_reliability"] < fast["single_analytic_reliability"]
        assert slow["reexec_analytic_reliability"] > slow["single_analytic_reliability"]
        assert all(row["analytic_within_confidence"] for row in rows)

    def test_e12_mapping_rows(self):
        rows = run_mapping_ablation_experiment(shapes=((3, 3),),
                                               heuristics=("critical_path", "random"))
        cp = next(r for r in rows if r["mapping"] == "critical_path")
        assert cp["energy_vs_cp"] == pytest.approx(1.0)
        assert all(math.isfinite(r["fmax_makespan"]) for r in rows)


def run_heuristic_comparison(specs):
    from repro.experiments import run_heuristic_comparison_experiment

    return run_heuristic_comparison_experiment(specs=specs, include_reference=False)


def run_vdd_rounding(specs):
    from repro.experiments import run_vdd_rounding_experiment

    return run_vdd_rounding_experiment(specs=specs, mode_counts=(5,))
