# Convenience targets for the reproduction repo.  `make help` lists these.
#
#   make test           - tier-1 test suite (the gate every PR must keep green)
#   make coverage       - tier-1 suite under pytest-cov with the CI coverage floor
#   make lint           - ruff check (critical rules; skipped when ruff is absent)
#   make analyze        - repo-specific static analysis (REP001-REP006 invariant rules)
#   make typecheck      - mypy over the strict-rung packages (skipped when mypy is absent)
#   make smoke          - reduced-size smoke of the simulation + batch-solver perf paths
#   make campaign-smoke - every E1-E13 scenario through the campaign runner
#   make serve-smoke    - boot `python -m repro serve` (single + --workers 2 fleet), assert 200/schema + shared store
#   make distributed-smoke - multi-worker coordinator + chaos tests under a hard timeout
#   make refresh-golden - intentionally regenerate tests/golden/*.json snapshots
#   make bench          - full benchmark/experiment suite (writes BENCH_*.json)
#   make check          - lint + analyze + typecheck + coverage + smoke + campaign-smoke
#                         + serve-smoke + distributed-smoke: what CI runs on every PR

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Critical rules (syntax errors, broken comparisons, undefined names), a
# bugbear/pyupgrade subset (mutable/call defaults, assert-False, modern
# generics, redundant open modes, collections.abc imports), and a curated
# comprehension/simplify subset (C4: unnecessary generator/literal/double
# casts; SIM: duplicate isinstance, needless bool, loop-to-any, open without
# context manager, `in d.keys()`, negated/yoda comparisons).  C408, SIM102,
# SIM105, SIM108, SIM114 and SIM117 are deliberately excluded: `dict(k=v)`
# registry literals, nested ifs/withs, try/except-pass cleanup and
# non-ternary branches are house style here.
RUFF_RULES ?= E9,F63,F7,F82,B006,B008,B011,UP006,UP015,UP035,C400,C401,C402,C403,C404,C405,C413,C414,C416,C419,SIM101,SIM103,SIM110,SIM115,SIM118,SIM201,SIM202,SIM300

.PHONY: help test lint analyze typecheck smoke campaign-smoke serve-smoke distributed-smoke bench check coverage refresh-golden

# Print the target catalogue above (kept in one place: this header).
help:
	@sed -n '2,16p' Makefile | sed 's/^#//'

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check --select $(RUFF_RULES) src tests benchmarks examples scripts; \
	else \
		echo "ruff not installed; skipping lint (CI runs it -- pip install ruff)"; \
	fi

# Repo-specific invariants (canonical JSON, seed discipline, lock discipline,
# registry dispatch, set-iteration determinism, float equality).  Stdlib-only,
# so unlike lint/typecheck it runs everywhere -- no graceful-skip branch.
analyze:
	$(PYTHON) -m repro.analysis src/repro

# Strict-rung packages per mypy.ini's ladder.  Skipped gracefully when mypy
# is not installed locally, mirroring the ruff pattern; CI pins and runs it.
typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy -p repro; \
	else \
		echo "mypy not installed; skipping typecheck (CI runs it -- pip install mypy)"; \
	fi

smoke:
	REPRO_E11_TRIALS=500 REPRO_BENCH_TRIALS=300 REPRO_BENCH_BATCH_MAX=100 \
		$(PYTHON) -m pytest \
		benchmarks/bench_batch_simulation.py \
		benchmarks/bench_batch_solvers.py \
		benchmarks/bench_e11_reliability_simulation.py -q -s

# Regenerate tests/golden/*.json after an *intentional* change to experiment
# output; commit the JSON diffs together with the change that caused them.
refresh-golden:
	$(PYTHON) tests/refresh_golden.py

# Tier-1 suite under pytest-cov with the line-coverage floor CI enforces.
# Skipped gracefully when pytest-cov is not installed locally.
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q --cov=src/repro --cov-report=term \
			--cov-report=xml:coverage.xml --cov-fail-under=80; \
	else \
		echo "pytest-cov not installed; running plain tier-1 suite instead"; \
		$(PYTHON) -m pytest -x -q; \
	fi

campaign-smoke:
	REPRO_E11_TRIALS=500 REPRO_BENCH_TRIALS=300 \
		$(PYTHON) -m repro campaign all --smoke --jobs 2

# End-to-end gate on the v1 HTTP API: boots the real `python -m repro serve`
# subprocess on a free port and asserts one solve and one batch round trip,
# then a `--workers 2` fleet on one shared port/store and asserts both
# workers answer, share cache hits, and drain cleanly on SIGTERM.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Multi-process fault-tolerance gate: the chaos proxy tests plus the
# SIGKILL-a-worker-mid-sweep integration test.  The hard `timeout` wrapper
# turns any coordinator deadlock or orphaned worker into a loud failure
# instead of a hung CI job.
distributed-smoke:
	timeout 300 $(PYTHON) -m pytest tests/test_distributed.py -q

# bench_*.py does not match pytest's default test_*.py discovery glob, so the
# files are passed explicitly (shell glob) rather than as a directory.
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s

check: lint analyze typecheck coverage smoke campaign-smoke serve-smoke distributed-smoke
