# Convenience targets for the reproduction repo.
#
#   make test           - tier-1 test suite (the gate every PR must keep green)
#   make lint           - ruff check (critical rules; skipped when ruff is absent)
#   make smoke          - reduced-trial smoke of the simulation perf path
#   make campaign-smoke - every E1-E13 scenario through the campaign runner
#   make bench          - full benchmark/experiment suite (writes BENCH_*.json)
#   make check          - lint + test + smoke + campaign-smoke: what CI runs on every PR

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Critical-only rule set: syntax errors, broken comparisons, undefined names.
RUFF_RULES ?= E9,F63,F7,F82

.PHONY: test lint smoke campaign-smoke bench check

test:
	$(PYTHON) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check --select $(RUFF_RULES) src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI runs it -- pip install ruff)"; \
	fi

smoke:
	REPRO_E11_TRIALS=500 REPRO_BENCH_TRIALS=300 $(PYTHON) -m pytest \
		benchmarks/bench_batch_simulation.py \
		benchmarks/bench_e11_reliability_simulation.py -q -s

campaign-smoke:
	REPRO_E11_TRIALS=500 REPRO_BENCH_TRIALS=300 \
		$(PYTHON) -m repro campaign all --smoke --jobs 2

# bench_*.py does not match pytest's default test_*.py discovery glob, so the
# files are passed explicitly (shell glob) rather than as a directory.
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q -s

check: lint test smoke campaign-smoke
