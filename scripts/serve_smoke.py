"""End-to-end smoke of ``python -m repro serve`` (the ``make serve-smoke`` gate).

Phase 1 launches the real CLI server as a subprocess on a free port, waits
for ``/healthz``, then POSTs one ``/v1/solve`` and one ``/v1/solve-batch``
and asserts HTTP 200 with the documented response schema.  Phase 2 boots a
``--workers 2`` fleet sharing one persistent store and asserts that both
workers answer on the advertised port and that a solve computed by one
worker is served ``cached: true`` by the other.  Exits non-zero (with the
server log on stderr) on any failure, so CI catches a broken serve path
even when the in-process tests pass.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

TIMEOUT_SECONDS = 60.0

SOLVE_FIELDS = ("api_version", "energy", "status", "solver", "feasible",
                "makespan", "speeds", "num_reexecuted", "dispatch", "cached",
                "elapsed_ms")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def request(port: int, method: str, path: str, body: dict | None = None):
    status, payload, _ = request_traced(port, method, path, body)
    return status, payload


def request_traced(port: int, method: str, path: str,
                   body: dict | None = None):
    """Like :func:`request`, but also returns the answering worker's pid
    (the ``X-Repro-Worker`` response header)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if data else {}
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload, response.getheader("X-Repro-Worker")
    finally:
        conn.close()


def wait_for_health(port: int, deadline: float) -> None:
    while time.monotonic() < deadline:
        try:
            status, payload = request(port, "GET", "/healthz")
            if status == 200 and payload.get("status") == "ok":
                return
        except OSError:
            pass
        time.sleep(0.2)
    raise RuntimeError(f"server did not become healthy within "
                       f"{TIMEOUT_SECONDS}s on port {port}")


def sample_problem() -> dict:
    from repro.core import BiCritProblem, ContinuousSpeeds
    from repro.core.problem_io import problem_to_dict
    from repro.dag import generators
    from repro.platform import Mapping, Platform

    graph = generators.fork(3.0, [2.0, 5.0, 1.0, 4.0])
    platform = Platform(5, ContinuousSpeeds(0.1, 2.0))
    problem = BiCritProblem(Mapping.one_task_per_processor(graph), platform,
                            deadline=6.0)
    return problem_to_dict(problem)


def check_solve_payload(payload: dict, what: str) -> None:
    missing = [f for f in SOLVE_FIELDS if f not in payload]
    assert not missing, f"{what}: missing response field(s) {missing}"
    assert payload["api_version"] == "v1", what
    assert payload["feasible"] is True, what
    assert payload["energy"] > 0, what


def drain_server(server: subprocess.Popen) -> str:
    server.terminate()
    try:
        out, _ = server.communicate(timeout=15)
    except subprocess.TimeoutExpired:
        server.kill()
        out, _ = server.communicate()
    return out or ""


def single_server_phase(store_dir: str) -> None:
    port = free_port()
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--store-dir", store_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=os.environ.copy())
    try:
        wait_for_health(port, time.monotonic() + TIMEOUT_SECONDS)
        problem = sample_problem()

        status, payload = request(port, "POST", "/v1/solve",
                                  {"problem": problem})
        assert status == 200, f"/v1/solve returned {status}: {payload}"
        check_solve_payload(payload, "/v1/solve")

        status, payload = request(port, "POST", "/v1/solve-batch",
                                  {"problems": [problem, problem, problem]})
        assert status == 200, f"/v1/solve-batch returned {status}: {payload}"
        assert payload["count"] == 3, payload
        for item in payload["results"]:
            check_solve_payload(item, "/v1/solve-batch result")
        assert payload["cached_count"] >= 1, \
            "repeat instances in the batch should hit the engine cache"

        status, payload = request(port, "GET", "/v1/store")
        assert status == 200 and payload["enabled"], payload
        assert payload["namespaces"].get("results", {}).get("entries", 0) >= 1, \
            f"solves were not written through to the store: {payload}"

        status, payload = request(port, "GET", "/metrics")
        assert status == 200 and payload["requests_total"] >= 2, payload

        print(f"serve-smoke OK on port {port}: /v1/solve and /v1/solve-batch "
              f"answered 200 with the v1 schema "
              f"(cache hit rate {payload['cache']['hit_rate']:.2f})")
    finally:
        out = drain_server(server)
        if out:
            sys.stderr.write("--- server log ---\n" + out)


def fleet_phase(store_dir: str) -> None:
    """Two workers, one port, one store: both must answer, and a result
    computed by either worker must be a store hit for the other."""
    port = free_port()
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", "2", "--store-dir", store_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=os.environ.copy())
    try:
        wait_for_health(port, time.monotonic() + TIMEOUT_SECONDS)
        problem = sample_problem()

        # Hammer the shared port until both workers have answered the same
        # solve.  Across all of those answers, at most one may have actually
        # dispatched a solver -- everyone else must hit the shared store
        # (phase 1 already warmed this instance, so usually zero).
        answered_by: dict[str, list[bool]] = {}
        uncached = 0
        deadline = time.monotonic() + TIMEOUT_SECONDS
        while len(answered_by) < 2 and time.monotonic() < deadline:
            status, payload, worker = request_traced(
                port, "POST", "/v1/solve", {"problem": problem})
            assert status == 200, f"fleet /v1/solve returned {status}"
            check_solve_payload(payload, "fleet /v1/solve")
            answered_by.setdefault(worker, []).append(payload["cached"])
            uncached += not payload["cached"]
        assert len(answered_by) == 2, \
            f"only worker(s) {sorted(answered_by)} answered on port {port}"
        assert uncached <= 1, \
            f"{uncached} uncached solves across the fleet -- workers are " \
            f"not sharing the persistent store"

        pid_a, pid_b = sorted(answered_by)
        print(f"serve-smoke OK on port {port}: workers {pid_a} and {pid_b} "
              f"both answered; {uncached} solver dispatch(es) across "
              f"{sum(len(v) for v in answered_by.values())} fleet solves "
              f"(shared store)")
    finally:
        out = drain_server(server)
        if server.returncode != 0:
            raise AssertionError(
                f"fleet exited {server.returncode} on SIGTERM (graceful "
                f"drain failed):\n{out}")
        if re.search(r"shutdown complete", out) is None:
            raise AssertionError(f"fleet log lacks a graceful shutdown "
                                 f"message:\n{out}")
        sys.stderr.write("--- fleet log ---\n" + out)


def main() -> int:
    try:
        with tempfile.TemporaryDirectory(prefix="repro-smoke-store-") as tmp:
            single_server_phase(tmp)
            fleet_phase(tmp)
        return 0
    except Exception as exc:  # noqa: BLE001 - report and fail the gate
        print(f"serve-smoke FAILED: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
