#!/usr/bin/env python
"""Comparing the discrete speed models on an Intel XScale-like processor.

The DISCRETE model (one operating point per task) is NP-complete, the
VDD-HOPPING model (switching allowed during a task) is polynomial, and the
INCREMENTAL model admits a constant-factor approximation -- Section IV of the
paper.  This example makes those statements concrete on the normalised Intel
XScale speed set {0.15, 0.4, 0.6, 0.8, 1.0} (reference [9] of the paper):

* an image-processing-like stencil DAG is mapped on two processors;
* for a sweep of deadlines, the script reports the CONTINUOUS lower bound,
  the VDD-HOPPING LP optimum, the exact DISCRETE optimum (MILP) and the
  rounding approximation, together with the exact solver's search effort --
  the practical face of the P vs NP-complete separation.

Run with:  python examples/discrete_dvfs_comparison.py
"""

from __future__ import annotations

from repro.continuous import solve_bicrit_continuous
from repro.core import BiCritProblem, DiscreteSpeeds, VddHoppingSpeeds
from repro.core.speeds import INTEL_XSCALE_SPEEDS
from repro.dag import generators
from repro.discrete import (
    solve_bicrit_discrete_milp,
    solve_bicrit_incremental_approx,
    solve_bicrit_vdd_lp,
    two_speed_structure,
)
from repro.experiments import print_table
from repro.platform import Platform, critical_path_mapping

NUM_PROCESSORS = 2
DEADLINE_SLACKS = (1.15, 1.4, 1.8, 2.5)


def main(*, width: int = 3, steps: int = 3,
         deadline_slacks: tuple[float, ...] = DEADLINE_SLACKS) -> None:
    graph = generators.stencil_1d(width=width, steps=steps, weight=2.0)
    listing = critical_path_mapping(graph, NUM_PROCESSORS, fmax=1.0)
    print(f"stencil DAG: {graph.num_tasks} tasks, mapped on {NUM_PROCESSORS} "
          f"processors, fmax makespan {listing.makespan:.2f}")
    print(f"XScale speed set: {INTEL_XSCALE_SPEEDS}")

    rows = []
    for slack in deadline_slacks:
        deadline = slack * listing.makespan

        def problem(speed_model):
            return BiCritProblem(listing.mapping,
                                 Platform(NUM_PROCESSORS, speed_model), deadline)

        continuous_platform = Platform(
            NUM_PROCESSORS, VddHoppingSpeeds(INTEL_XSCALE_SPEEDS)).continuous_twin()
        continuous = solve_bicrit_continuous(
            BiCritProblem(listing.mapping, continuous_platform, deadline))
        vdd = solve_bicrit_vdd_lp(problem(VddHoppingSpeeds(INTEL_XSCALE_SPEEDS)))
        # HiGHS branch-and-cut for the NP-complete single-mode problem; swap
        # backend="bnb" to watch the in-house branch-and-bound's node counts.
        discrete = solve_bicrit_discrete_milp(problem(DiscreteSpeeds(INTEL_XSCALE_SPEEDS)),
                                              backend="scipy")
        approx = solve_bicrit_incremental_approx(problem(DiscreteSpeeds(INTEL_XSCALE_SPEEDS)))
        structure = two_speed_structure(vdd.require_schedule())
        rows.append({
            "deadline_slack": slack,
            "continuous": continuous.energy,
            "vdd_hopping_lp": vdd.energy,
            "discrete_milp": discrete.energy,
            "round_up_heuristic": approx.energy,
            "vdd_gap_%": 100 * (vdd.energy / continuous.energy - 1),
            "discrete_gap_%": 100 * (discrete.energy / continuous.energy - 1),
            "max_speeds_per_task": structure.max_speeds_per_task,
        })

    print_table(rows, title="\nEnergy by speed model across deadline slacks")
    print("\nReading: VDD-HOPPING tracks the continuous optimum within a few "
          "percent at every deadline because it mixes two consecutive XScale "
          "modes per task, while the single-mode DISCRETE model pays the "
          "largest penalty exactly where the required speed falls between "
          "two modes -- and finding its optimum needs an NP-complete "
          "branch-and-cut search, not a linear program.")


if __name__ == "__main__":
    main()
