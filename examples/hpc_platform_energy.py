#!/usr/bin/env python
"""Energy reclamation on an HPC-style platform across all speed models.

Scenario: a bulk-synchronous application (a chain of fork-join phases, the
kind of workload the paper's introduction motivates) is mapped onto a small
homogeneous cluster partition by a critical-path list scheduler.  The
deadline is 1.6x the fmax makespan -- typical slack left by a conservative
reservation.  The script then answers the practitioner's question: *how much
of that slack can be converted into energy savings, and how much does the
answer depend on the DVFS model of the processors?*

It compares, on the same instance:

* the no-DVFS baseline and the per-task local slack-reclaiming baseline,
* the global CONTINUOUS optimum (convex program of Section III),
* the VDD-HOPPING optimum (linear program of Section IV),
* the exact DISCRETE optimum (NP-complete; MILP) and the polynomial
  INCREMENTAL approximation with its guaranteed factor.

Run with:  python examples/hpc_platform_energy.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import local_slack_reclaiming, no_dvfs, uniform_slowdown
from repro.continuous import solve_bicrit_continuous
from repro.core import BiCritProblem, DiscreteSpeeds, IncrementalSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.discrete import (
    approximation_bound,
    solve_bicrit_discrete_milp,
    solve_bicrit_incremental_approx,
    solve_bicrit_vdd_lp,
)
from repro.experiments import print_table
from repro.platform import Platform, critical_path_mapping

NUM_PROCESSORS = 8
MODES = [0.25, 0.5, 0.75, 1.0]          # normalised DVFS operating points
DEADLINE_SLACK = 1.6


def main(*, num_phases: int = 4, width: int = 6,
         num_processors: int = NUM_PROCESSORS) -> None:
    # The application: BSP phases of the given width with random phase weights.
    graph = generators.phase_fork_join(num_phases=num_phases, width=width, seed=2024)
    print(f"application: {graph.num_tasks} tasks, total work "
          f"{graph.total_weight():.1f}, critical path {graph.critical_path_weight():.1f}")

    # Mapping by critical-path list scheduling at fmax (the paper's choice).
    listing = critical_path_mapping(graph, num_processors, fmax=1.0)
    deadline = DEADLINE_SLACK * listing.makespan
    print(f"mapped on {num_processors} processors: fmax makespan {listing.makespan:.2f}, "
          f"deadline {deadline:.2f}")

    def problem(speed_model) -> BiCritProblem:
        return BiCritProblem(listing.mapping, Platform(num_processors, speed_model),
                             deadline)

    rows = []

    continuous_platform = Platform(num_processors, VddHoppingSpeeds(MODES)).continuous_twin()
    continuous_problem = BiCritProblem(listing.mapping, continuous_platform, deadline)
    reference = no_dvfs(continuous_problem).energy

    def add(name, energy, note=""):
        rows.append({
            "policy": name,
            "energy": energy,
            "saving_vs_fmax": f"{100 * (1 - energy / reference):.1f}%",
            "note": note,
        })

    add("no DVFS (all fmax)", reference)
    add("uniform slowdown", uniform_slowdown(continuous_problem).energy)
    add("local slack reclaiming", local_slack_reclaiming(continuous_problem).energy,
        "per-task backfilling")
    add("CONTINUOUS optimum", solve_bicrit_continuous(continuous_problem).energy,
        "convex program")
    add("VDD-HOPPING optimum", solve_bicrit_vdd_lp(problem(VddHoppingSpeeds(MODES))).energy,
        "linear program")
    add("DISCRETE optimum", solve_bicrit_discrete_milp(problem(DiscreteSpeeds(MODES))).energy,
        "MILP (NP-complete)")
    incremental = IncrementalSpeeds(0.25, 1.0, 0.25)
    approx = solve_bicrit_incremental_approx(problem(incremental))
    add("INCREMENTAL approx", approx.energy,
        f"guaranteed within x{approximation_bound(incremental):.2f}")

    print_table(rows, title="\nEnergy per policy (same mapping, same deadline)")
    print("\nReading: the global CONTINUOUS optimum is the floor; VDD-HOPPING "
          "gets within a few percent of it with only "
          f"{len(MODES)} modes; the single-mode DISCRETE optimum and the "
          "INCREMENTAL approximation pay a little more; the local baseline "
          "leaves most of the savings on the table.")


if __name__ == "__main__":
    main()
