#!/usr/bin/env python
"""The energy / makespan / reliability trade-off (TRI-CRIT) on a real-ish DAG.

Scenario: a safety-relevant pipeline (here a layered random DAG standing in
for a signal-processing pipeline) runs on a 4-processor embedded board.
Transient faults become more likely when DVFS lowers the voltage (Zhu et
al.'s model, adopted by the paper), so the operator wants each stage to be at
least as reliable as if it ran at nominal speed -- the paper's TRI-CRIT
constraint -- while spending as little energy as the deadline allows.

The script:

1. solves the problem with the best reliable schedule *without* re-execution
   (every task at least at f_rel),
2. runs the paper's two heuristic families and their best-of combination,
3. cross-checks the winner against the exhaustive optimum (the instance is
   small enough),
4. validates the chosen schedule with the fault-injecting Monte-Carlo
   simulator: the observed success rate must match the analytic reliability,
   and the observed energy is below the worst-case accounting because second
   executions rarely run.

Run with:  python examples/reliability_tradeoff.py
"""

from __future__ import annotations

from repro.continuous import (
    best_of_heuristics,
    heuristic_energy_gain,
    heuristic_parallel_slack,
    solve_tricrit_exhaustive,
    solve_tricrit_no_reexec,
)
from repro.core import ReliabilityModel, TriCritProblem, ContinuousSpeeds
from repro.dag import generators
from repro.experiments import print_table
from repro.platform import Platform, critical_path_mapping
from repro.simulation import run_monte_carlo

NUM_PROCESSORS = 4
DEADLINE_SLACK = 2.2
LAMBDA0 = 1e-4          # fault rate at fmax (per time unit)
SENSITIVITY = 4.0       # how sharply the fault rate grows when slowing down


def main(*, layers: int = 3, width: int = 3, trials: int = 20000) -> None:
    graph = generators.random_layered_dag(layers, width, seed=7, low=2.0, high=8.0)
    reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=LAMBDA0,
                                   sensitivity=SENSITIVITY)
    platform = Platform(NUM_PROCESSORS, ContinuousSpeeds(0.1, 1.0),
                        reliability_model=reliability)
    listing = critical_path_mapping(graph, NUM_PROCESSORS, fmax=1.0)
    deadline = DEADLINE_SLACK * listing.makespan
    problem = TriCritProblem(listing.mapping, platform, deadline)
    print(f"pipeline: {graph.num_tasks} tasks on {NUM_PROCESSORS} processors, "
          f"deadline {deadline:.2f} ({DEADLINE_SLACK}x the fmax makespan)")

    solutions = {
        "no re-execution (all >= f_rel)": solve_tricrit_no_reexec(problem),
        "heuristic A (energy gain)": heuristic_energy_gain(problem),
        "heuristic B (parallel slack)": heuristic_parallel_slack(problem),
        "best of A/B": best_of_heuristics(problem),
        "exhaustive optimum": solve_tricrit_exhaustive(problem),
    }

    rows = []
    for name, result in solutions.items():
        schedule = result.require_schedule()
        report = problem.evaluate(schedule)
        rows.append({
            "policy": name,
            "energy": result.energy,
            "makespan": report.makespan,
            "reexecuted": schedule.num_reexecuted(),
            "feasible": report.feasible,
        })
    print_table(rows, title="\nTRI-CRIT solutions (deadline and reliability enforced)")

    chosen = solutions["best of A/B"].require_schedule()
    mc = run_monte_carlo(chosen, trials=trials, seed=1)
    print(f"\nMonte-Carlo validation of the chosen schedule ({trials} runs):")
    print(f"  analytic reliability : {mc.analytic_reliability:.6f}")
    print(f"  simulated success    : {mc.success_rate:.6f} "
          f"(+/- {2 * mc.success_stderr:.6f})")
    print(f"  worst-case energy    : {mc.mean_worst_case_energy:.3f}")
    print(f"  observed mean energy : {mc.mean_energy:.3f}")
    print(f"  observed max makespan: {mc.max_makespan:.3f} (deadline {deadline:.3f})")
    print("\nReading: re-execution lets non-critical tasks run well below f_rel, "
          "cutting energy versus the reliable no-re-execution schedule while the "
          "simulated success rate confirms the reliability constraint holds.")


if __name__ == "__main__":
    main()
