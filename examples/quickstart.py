#!/usr/bin/env python
"""Quickstart: minimise the energy of a mapped task graph under a deadline.

This example walks through the library's core objects on the paper's
running example structure -- a fork graph:

1. build a task graph and a platform,
2. map the graph (here: one task per processor, the fork theorem setting),
3. state the BI-CRIT problem (energy | deadline) and solve it under the
   CONTINUOUS model -- the dispatcher recognises the fork and applies the
   paper's closed-form theorem,
4. inspect the resulting schedule and compare it against the no-DVFS
   baseline,
5. solve the same instance under the discrete VDD-HOPPING model with the
   linear program of Section IV.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import no_dvfs
from repro.continuous import fork_energy, solve_bicrit_continuous
from repro.core import BiCritProblem, ContinuousSpeeds, VddHoppingSpeeds
from repro.dag import generators
from repro.discrete import solve_bicrit_vdd_lp
from repro.platform import Mapping, Platform


def main(*, child_weights: list[float] = (2.0, 5.0, 1.0, 4.0)) -> None:
    # ------------------------------------------------------------------
    # 1. Application: a fork graph T0 -> {T1..Tn} with computation weights.
    # ------------------------------------------------------------------
    child_weights = list(child_weights)
    graph = generators.fork(source_weight=3.0, child_weights=child_weights)
    print(f"task graph: {graph}")
    print(f"critical path weight: {graph.critical_path_weight():.2f}")

    # ------------------------------------------------------------------
    # 2. Platform and mapping: one processor per task, speeds in [0.1, 2].
    # ------------------------------------------------------------------
    num_processors = len(child_weights) + 1
    platform = Platform(num_processors, ContinuousSpeeds(0.1, 2.0))
    mapping = Mapping.one_task_per_processor(graph)

    # ------------------------------------------------------------------
    # 3. BI-CRIT: minimise energy subject to a deadline of 6 time units.
    # ------------------------------------------------------------------
    problem = BiCritProblem(mapping, platform, deadline=6.0)
    result = solve_bicrit_continuous(problem)
    schedule = result.require_schedule()
    print(f"\nsolver route       : {result.solver}")
    print(f"optimal energy     : {result.energy:.4f}")
    print(f"paper's formula    : {fork_energy(3.0, child_weights, 6.0):.4f}")
    print(f"achieved makespan  : {schedule.makespan():.4f}  (deadline 6.0)")
    print("per-task speeds    :")
    for task, speeds in sorted(schedule.speed_assignment().items()):
        print(f"    {task}: {speeds[0]:.4f}")

    # ------------------------------------------------------------------
    # 4. How much energy did DVFS save compared to running at fmax?
    # ------------------------------------------------------------------
    baseline = no_dvfs(problem)
    saving = 1.0 - result.energy / baseline.energy
    print(f"\nno-DVFS energy     : {baseline.energy:.4f}")
    print(f"energy saved       : {100 * saving:.1f}%")

    # ------------------------------------------------------------------
    # 5. Same instance under VDD-HOPPING with 5 discrete modes (Section IV LP).
    # ------------------------------------------------------------------
    vdd_platform = Platform(num_processors, VddHoppingSpeeds([0.4, 0.8, 1.2, 1.6, 2.0]))
    vdd_problem = BiCritProblem(mapping, vdd_platform, deadline=6.0)
    vdd_result = solve_bicrit_vdd_lp(vdd_problem)
    print(f"\nVDD-HOPPING energy : {vdd_result.energy:.4f} "
          f"(+{100 * (vdd_result.energy / result.energy - 1):.2f}% vs continuous)")
    one_task = sorted(graph.tasks())[1]
    intervals = vdd_result.require_schedule().decisions[one_task].executions[0].intervals
    pretty = ", ".join(f"{d:.3f}s @ {f:.1f}" for f, d in intervals)
    print(f"speed profile of {one_task}: {pretty}")


if __name__ == "__main__":
    main()
