"""E1 -- Fork theorem (paper Section III, BI-CRIT CONTINUOUS closed form).

Claim reproduced: for a fork graph the optimal speeds are given by the
closed-form expressions ``f_0 = ((sum w_i^3)^(1/3) + w_0)/D`` and
``f_i = f_0 w_i / (sum w_i^3)^(1/3)``, with optimal energy
``((sum w_i^3)^(1/3) + w_0)^3 / D^2``.  The benchmark regenerates the
comparison table between the algebraic formula and the numerical convex
program across fork widths and deadline slacks.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e1-fork-closed-form")


def test_e1_fork_closed_form_matches_convex(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E1: fork closed form vs numerical convex optimum",
                columns=list(SCENARIO.columns))
    assert len(rows) == 15
    for row in rows:
        # The dispatcher used the closed form and the convex solver agrees.
        assert row["route"] == "fork"
        # The unbounded formula is a relaxation of the bounded problem, and on
        # this speed range the bound never binds, so they coincide.
        assert row["formula_energy"] <= row["closed_form_energy"] * (1 + 1e-9)
        assert abs(row["formula_energy"] - row["closed_form_energy"]) <= 1e-6 * row["formula_energy"]
        assert row["relative_gap"] < 5e-3
