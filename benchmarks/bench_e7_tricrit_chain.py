"""E7 -- TRI-CRIT on a linear chain: NP-hard, but the paper's strategy is optimal.

Claims reproduced:

* the exhaustive optimum requires enumerating exponentially many re-execution
  subsets (the practical face of the NP-hardness result);
* the "first slow the execution of all tasks equally, then choose the tasks
  to be re-executed" greedy strategy matches the exhaustive optimum (within
  a small tolerance) on every tested chain;
* re-execution strictly improves on the best reliable no-re-execution
  schedule once the deadline leaves enough slack.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e7-tricrit-chain")


def test_e7_chain_strategy_optimal(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E7: TRI-CRIT chain - greedy strategy vs exhaustive optimum")
    for row in rows:
        assert row["greedy_over_exact"] <= 1.05
        assert row["exact_energy"] <= row["no_reexec_energy"] + 1e-9
        assert row["subsets_enumerated"] == 2 ** row["tasks"]
    # With slack 3.0 re-execution is actually used somewhere.
    assert any(row["exact_reexecuted"] > 0 for row in rows if row["slack"] >= 3.0)
