"""E12 -- Impact of the list-scheduling mapping heuristic (paper Section V).

The paper's future-work question: the energy heuristics assume a mapping
produced by a critical-path list scheduler; does the choice of that mapping
heuristic matter, and could a non-makespan-optimal mapping sometimes be
better for energy?  The ablation sweeps the mapping rules implemented in
:mod:`repro.platform.list_scheduling` and optimises the speeds on top of each
mapping with the same deadline.
"""

from __future__ import annotations

import math

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e12-mapping-ablation")


def test_e12_mapping_choice_impacts_energy(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E12: mapping-heuristic ablation (energy after speed scaling)")
    cp_rows = [r for r in rows if r["mapping"] == "critical_path"]
    assert all(r["feasible"] for r in cp_rows)
    # The spread across mappings is non-trivial: at least one alternative
    # mapping differs from the critical-path mapping by more than 1%.
    finite = [r for r in rows if math.isfinite(r["energy_vs_cp"])]
    assert any(abs(r["energy_vs_cp"] - 1.0) > 0.01 for r in finite
               if r["mapping"] != "critical_path")
    # And the critical-path mapping is never catastrophically beaten (it is a
    # sound default), staying within 25% of the best mapping found.
    for instance in {r["instance"] for r in rows}:
        instance_rows = [r for r in finite if r["instance"] == instance]
        best = min(r["energy"] for r in instance_rows)
        cp = next(r["energy"] for r in instance_rows if r["mapping"] == "critical_path")
        assert cp <= 1.25 * best
