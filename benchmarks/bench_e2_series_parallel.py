"""E2 -- Closed forms for trees / series-parallel graphs (paper Section III).

Claim reproduced: the equivalent-weight recursion (series = sum, parallel =
cube-root of the sum of cubes) gives the optimal BI-CRIT CONTINUOUS energy
``W^3/D^2`` for series-parallel execution graphs; the numerical convex
program must agree on random SP graphs of growing size.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e2-series-parallel")


def test_e2_series_parallel_closed_form_matches_convex(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E2: series-parallel equivalent-weight recursion vs convex")
    assert len(rows) == 8
    for row in rows:
        assert row["relative_gap"] < 5e-3
