"""Shared helpers for the benchmark/experiment harness.

Every module under ``benchmarks/`` reproduces one experiment of the index
E1-E12 (tabulated in the root ``README.md``).  Each test

* runs the corresponding campaign-registry scenario once (timed with
  ``benchmark.pedantic`` so pytest-benchmark reports the cost of
  regenerating the experiment table),
* prints the resulting rows as an ASCII table -- the output of
  ``pytest benchmarks/ --benchmark-only -s`` is the reproduction record
  summarised in ``EXPERIMENTS.md``,
* asserts the headline qualitative claim of the experiment (who wins, what
  is bounded by what), which is the part of the paper's result that must
  survive the substitution of our simulator for the authors' setup.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1)

    return _run
