"""Shared helpers for the benchmark/experiment harness.

Every module under ``benchmarks/`` reproduces one experiment of the index
E1-E13 (tabulated in the root ``README.md``).  Each test

* runs the corresponding campaign-registry scenario once (timed with
  ``benchmark.pedantic`` when the pytest-benchmark plugin is installed, a
  plain ``perf_counter`` wrapper otherwise -- the plugin is optional and CI
  does not install it),
* prints the resulting rows as an ASCII table -- the output of
  ``pytest benchmarks/ -s`` is the reproduction record summarised in
  ``EXPERIMENTS.md``,
* asserts the headline qualitative claim of the experiment (who wins, what
  is bounded by what), which is the part of the paper's result that must
  survive the substitution of our simulator for the authors' setup.
"""

from __future__ import annotations

import time

import pytest


@pytest.fixture
def run_once(request):
    """Run a deterministic experiment exactly once under a timer.

    Uses pytest-benchmark's ``benchmark.pedantic`` when the plugin is
    available (so ``--benchmark-only`` style reporting keeps working
    locally) and falls back to a bare timed call otherwise.
    """
    if request.config.pluginmanager.hasplugin("benchmark"):
        benchmark = request.getfixturevalue("benchmark")

        def _run(func, *args, **kwargs):
            return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                      rounds=1, iterations=1)
    else:
        def _run(func, *args, **kwargs):
            t0 = time.perf_counter()
            result = func(*args, **kwargs)
            elapsed = time.perf_counter() - t0
            print(f"\n[run_once] {getattr(func, '__name__', 'call')} "
                  f"took {elapsed:.3f}s")
            return result

    return _run
