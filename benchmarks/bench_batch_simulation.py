"""Perf-regression harness for the vectorized Monte-Carlo kernel.

Times the scalar reference engine against the batch engine on the E11 chain
instance and records the measurements to ``BENCH_simulation.json`` at the
repository root, so successive PRs can compare before/after timings.  The
acceptance bar of the batch-kernel work -- at least a 10x speedup at
``trials=4000`` with scalar/batch statistical agreement -- is asserted here.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_simulation.py -q -s

Set ``REPRO_BENCH_TRIALS`` to a smaller value (e.g. 300) for a CI smoke run;
the speedup assertion is relaxed below 2000 trials because fixed Python
overhead dominates tiny runs.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.core.schedule import Schedule, TaskDecision
from repro.continuous.tricrit_chain import reexecution_speed_floor
from repro.dag import generators
from repro.experiments.instances import make_platform
from repro.platform.mapping import Mapping
from repro.simulation import compile_schedule, run_monte_carlo

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_simulation.json"
TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "4000"))


def e11_chain_schedules(chain_size=8, lambda0=1e-3, sensitivity=4.0, seed=47,
                        fraction=0.6):
    """The E11 chain instance: single-execution and re-executed variants.

    Fresh ``Schedule`` objects are built on every call so the batch timing
    honestly includes the one-off compilation cost.
    """
    graph = generators.random_chain(chain_size, seed=seed)
    mapping = Mapping.single_processor(graph)
    platform = make_platform(1, speeds="continuous", lambda0=lambda0,
                             sensitivity=sensitivity)
    model = platform.reliability()
    speed = max(fraction * platform.fmax, platform.fmin)
    single = Schedule.from_speeds(mapping, platform,
                                  {t: speed for t in graph.tasks()})
    decisions = {}
    for t in graph.tasks():
        w = graph.weight(t)
        reexec_speed = max(speed, reexecution_speed_floor(model, w, platform.fmin))
        decisions[t] = TaskDecision.reexecuted(t, w, reexec_speed, reexec_speed)
    reexec = Schedule(mapping, platform, decisions)
    return single, reexec


def _time_engine(engine: str, trials: int, seed: int = 7) -> tuple[float, object]:
    _, schedule = e11_chain_schedules()
    t0 = time.perf_counter()
    summary = run_monte_carlo(schedule, trials, seed=seed, engine=engine)
    return time.perf_counter() - t0, summary


def test_batch_kernel_speedup_and_equivalence():
    trials = TRIALS
    scalar_seconds, scalar = _time_engine("scalar", trials)
    batch_seconds, batch = _time_engine("batch", trials)
    speedup = scalar_seconds / batch_seconds if batch_seconds > 0 else math.inf

    # Statistical agreement between the two engines and the analytic model.
    p = scalar.analytic_reliability
    tol = 6.0 * math.sqrt(max(p * (1.0 - p), 1e-12) * 2.0 / trials) + 1e-9
    assert abs(batch.success_rate - scalar.success_rate) <= tol
    assert batch.within_confidence() and scalar.within_confidence()

    # Per-schedule compilation cost, for the record.
    single, reexec = e11_chain_schedules()
    t0 = time.perf_counter()
    compile_schedule(reexec)
    compile_seconds = time.perf_counter() - t0

    record = {
        "benchmark": "run_monte_carlo on the E11 chain instance (re-executed)",
        "instance": {"chain_size": 8, "lambda0": 1e-3, "sensitivity": 4.0,
                     "seed": 47, "speed_fraction": 0.6},
        "trials": trials,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "compile_seconds": round(compile_seconds, 6),
        "speedup": round(speedup, 2),
        "scalar_success_rate": scalar.success_rate,
        "batch_success_rate": batch.success_rate,
        "analytic_reliability": p,
    }
    # Fixed overhead dominates tiny smoke runs: below 2000 trials the 10x bar
    # is not held and the record file is left alone so a reduced-trial CI run
    # cannot clobber the full-trial measurement.
    if trials >= 2000:
        BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nbatch-kernel speedup at trials={trials}: {speedup:.1f}x "
              f"(scalar {scalar_seconds:.3f}s, batch {batch_seconds:.3f}s); "
              f"recorded to {BENCH_PATH.name}")
        assert speedup >= 10.0, (
            f"batch engine only {speedup:.1f}x faster than scalar at trials={trials}"
        )
    else:
        print(f"\nsmoke run (trials={trials}): speedup {speedup:.1f}x; "
              f"{BENCH_PATH.name} not rewritten")
        assert speedup >= 1.0


def test_batch_kernel_scales_sublinearly_in_trials():
    """Doubling trials must cost far less than double the batch wall time."""
    _, schedule = e11_chain_schedules()
    run_monte_carlo(schedule, 100, seed=1, engine="batch")  # warm the compile cache
    t0 = time.perf_counter()
    run_monte_carlo(schedule, 1000, seed=1, engine="batch")
    small = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_monte_carlo(schedule, 8000, seed=1, engine="batch")
    large = time.perf_counter() - t0
    # Both runs sit in the sub-10ms range where scheduler noise dominates,
    # so the bound is deliberately generous: 8x the trials must cost well
    # under 8x the time (with an absolute floor against timer jitter).
    assert large < max(8 * small, 0.05)
