"""E9 -- The two complementary TRI-CRIT heuristic families (paper Section III).

Claims reproduced across chain-like, fork-like, layered and series-parallel
instances:

* both heuristic families always improve on (or match) the best reliable
  schedule without re-execution and the naive greedy re-execution baseline;
* they are complementary: neither family wins everywhere;
* "taking the best result out of those two heuristics always gives the best
  result over all simulations": the best-of combination equals the winner on
  every instance, and stays close to the exhaustive optimum where the latter
  is computable.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e9-heuristics")


def test_e9_heuristic_families_are_complementary(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E9: TRI-CRIT heuristics across DAG classes")
    for row in rows:
        assert row["best_of"] <= row["energy_gain_h"] + 1e-9
        assert row["best_of"] <= row["parallel_slack_h"] + 1e-9
        assert row["best_of"] <= row["no_reexec"] + 1e-9
        assert row["best_of"] <= row["greedy_baseline"] + 1e-6
        if "best_over_exhaustive" in row:
            assert row["best_over_exhaustive"] <= 1.10
    # Re-execution helps on a majority of the suite (slack 2.0 everywhere).
    improved = sum(1 for row in rows if row["best_of"] < row["no_reexec"] - 1e-9)
    assert improved >= len(rows) // 2
