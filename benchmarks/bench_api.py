"""Wall-clock harness for the v1 API facade (``repro.api``).

Measures the two service-grade claims of the API layer and records them to
``BENCH_api.json`` at the repository root:

* **Engine result cache** -- repeat solves of instances already in the LRU
  must be served at least 10x faster than the cold solves that populated
  it (the acceptance bar of the API PR).  Measured twice: with problem
  *objects* (in-process consumers; content hash memoized on the instance)
  and with problem *dicts* (wire-shaped payloads; every request re-hashes
  the JSON payload);
* **serve throughput** -- requests per second through a real
  ``ThreadingHTTPServer`` on localhost, for single ``POST /v1/solve``
  calls (warm cache) and for a ``POST /v1/solve-batch`` with a vectorized
  instance group.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_api.py -q -s
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

from repro.api import Engine, SolveBatchRequest, SolveRequest
from repro.api.server import make_server
from repro.core.problem_io import problem_to_dict
from repro.experiments.instances import chain_suite, tricrit_problem

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_api.json"

#: Cached repeats must beat cold solves by at least this factor.
CACHE_SPEEDUP_BAR = 10.0

#: Instance count knobs (reduced in CI via the usual env override).
NUM_INSTANCES = int(os.environ.get("REPRO_BENCH_API_INSTANCES", "24"))
SERVE_REQUESTS = int(os.environ.get("REPRO_BENCH_API_REQUESTS", "200"))


def _instances():
    """TRI-CRIT chains: each cold solve runs the subset-enumeration solver,
    so the cold/cached contrast measures a real (not trivial) workload."""
    specs = chain_suite(sizes=(8,), slacks=(2.0, 2.5, 3.0), seed=59)
    problems = []
    for i in range(NUM_INSTANCES):
        spec = specs[i % len(specs)]
        problems.append(tricrit_problem(spec, frel=0.8 - 0.004 * i))
    return problems


def _timed_loop(func, items):
    t0 = time.perf_counter()
    for item in items:
        func(item)
    return (time.perf_counter() - t0) / len(items)


def test_engine_cache_speedup_and_serve_throughput(run_once):
    problems = _instances()
    payloads = [problem_to_dict(p) for p in problems]

    # --- object path (in-process consumers) ---------------------------
    engine = Engine()
    cold_obj = _timed_loop(lambda p: engine.solve(SolveRequest(p)), problems)
    warm_obj = _timed_loop(lambda p: engine.solve(SolveRequest(p)), problems)

    # --- wire path (dict payloads re-hashed per request) --------------
    engine_wire = Engine()
    cold_wire = _timed_loop(lambda p: engine_wire.solve(SolveRequest(p)),
                            payloads)
    warm_wire = _timed_loop(lambda p: engine_wire.solve(SolveRequest(p)),
                            payloads)

    speedup_obj = cold_obj / warm_obj
    speedup_wire = cold_wire / warm_wire

    # --- serve throughput over a real socket --------------------------
    server = make_server(port=0, engine=engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        body = json.dumps({"problem": payloads[0]}).encode("utf-8")
        t0 = time.perf_counter()
        for _ in range(SERVE_REQUESTS):
            conn.request("POST", "/v1/solve", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 200
            response.read()
        solve_rps = SERVE_REQUESTS / (time.perf_counter() - t0)

        batch_body = json.dumps({"problems": payloads}).encode("utf-8")
        t0 = time.perf_counter()
        conn.request("POST", "/v1/solve-batch", body=batch_body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 200
        batch_payload = json.loads(response.read().decode("utf-8"))
        batch_seconds = time.perf_counter() - t0
        assert batch_payload["count"] == len(payloads)
        conn.close()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    record = {
        "instances": len(problems),
        "engine_cache": {
            "object_cold_ms": cold_obj * 1e3,
            "object_cached_ms": warm_obj * 1e3,
            "object_speedup": speedup_obj,
            "wire_cold_ms": cold_wire * 1e3,
            "wire_cached_ms": warm_wire * 1e3,
            "wire_speedup": speedup_wire,
            "speedup_bar": CACHE_SPEEDUP_BAR,
        },
        "serve": {
            "solve_requests": SERVE_REQUESTS,
            "solve_requests_per_second": solve_rps,
            "batch_instances": len(payloads),
            "batch_seconds": batch_seconds,
            "batch_instances_per_second": len(payloads) / batch_seconds,
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[bench_api] cold {cold_obj * 1e3:.3f} ms -> cached "
          f"{warm_obj * 1e3:.4f} ms per solve ({speedup_obj:.0f}x objects, "
          f"{speedup_wire:.0f}x wire payloads); serve {solve_rps:.0f} req/s, "
          f"batch {len(payloads) / batch_seconds:.0f} instances/s "
          f"-> {BENCH_PATH.name}")

    assert speedup_obj >= CACHE_SPEEDUP_BAR, (
        f"engine-cached repeat solves only {speedup_obj:.1f}x faster than "
        f"cold (bar: {CACHE_SPEEDUP_BAR}x)")
    assert speedup_wire >= CACHE_SPEEDUP_BAR, (
        f"wire-payload cached solves only {speedup_wire:.1f}x faster than "
        f"cold (bar: {CACHE_SPEEDUP_BAR}x)")
