"""Wall-clock harness for the v1 API facade (``repro.api``).

Measures the two service-grade claims of the API layer and records them to
``BENCH_api.json`` at the repository root:

* **Engine result cache** -- repeat solves of instances already in the LRU
  must be served at least 10x faster than the cold solves that populated
  it (the acceptance bar of the API PR).  Measured twice: with problem
  *objects* (in-process consumers; content hash memoized on the instance)
  and with problem *dicts* (wire-shaped payloads; every request re-hashes
  the JSON payload);
* **serve throughput** -- requests per second through a real
  ``ThreadingHTTPServer`` on localhost, for single ``POST /v1/solve``
  calls (warm cache) and for a ``POST /v1/solve-batch`` with a vectorized
  instance group.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_api.py -q -s
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
from pathlib import Path

from repro.api import Engine, SolveBatchRequest, SolveRequest
from repro.api.server import make_server
from repro.core.problem_io import problem_to_dict
from repro.experiments.instances import chain_suite, tricrit_problem

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_api.json"

#: Cached repeats must beat cold solves by at least this factor.
CACHE_SPEEDUP_BAR = 10.0

#: Instance count knobs (reduced in CI via the usual env override).
NUM_INSTANCES = int(os.environ.get("REPRO_BENCH_API_INSTANCES", "24"))
SERVE_REQUESTS = int(os.environ.get("REPRO_BENCH_API_REQUESTS", "200"))

#: Columnar solve-batch size (the PR 8 acceptance measurement).
COLUMNAR_INSTANCES = int(os.environ.get("REPRO_BENCH_API_COLUMNAR_INSTANCES",
                                        "10000"))
#: Per-instance wire throughput of the pre-columnar pipeline, as recorded
#: in BENCH_api.json by the API PR (serve.batch_instances_per_second).
WIRE_BASELINE_IPS = 1760.0
#: The columnar path must beat that baseline by at least this factor.
COLUMNAR_SPEEDUP_BAR = 10.0


def _instances():
    """TRI-CRIT chains: each cold solve runs the subset-enumeration solver,
    so the cold/cached contrast measures a real (not trivial) workload."""
    specs = chain_suite(sizes=(8,), slacks=(2.0, 2.5, 3.0), seed=59)
    problems = []
    for i in range(NUM_INSTANCES):
        spec = specs[i % len(specs)]
        problems.append(tricrit_problem(spec, frel=0.8 - 0.004 * i))
    return problems


def _timed_loop(func, items):
    t0 = time.perf_counter()
    for item in items:
        func(item)
    return (time.perf_counter() - t0) / len(items)


def test_engine_cache_speedup_and_serve_throughput(run_once):
    problems = _instances()
    payloads = [problem_to_dict(p) for p in problems]

    # --- object path (in-process consumers) ---------------------------
    engine = Engine()
    cold_obj = _timed_loop(lambda p: engine.solve(SolveRequest(p)), problems)
    warm_obj = _timed_loop(lambda p: engine.solve(SolveRequest(p)), problems)

    # --- wire path (dict payloads re-hashed per request) --------------
    engine_wire = Engine()
    cold_wire = _timed_loop(lambda p: engine_wire.solve(SolveRequest(p)),
                            payloads)
    warm_wire = _timed_loop(lambda p: engine_wire.solve(SolveRequest(p)),
                            payloads)

    speedup_obj = cold_obj / warm_obj
    speedup_wire = cold_wire / warm_wire

    # --- serve throughput over a real socket --------------------------
    server = make_server(port=0, engine=engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        body = json.dumps({"problem": payloads[0]}).encode("utf-8")
        t0 = time.perf_counter()
        for _ in range(SERVE_REQUESTS):
            conn.request("POST", "/v1/solve", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 200
            response.read()
        solve_rps = SERVE_REQUESTS / (time.perf_counter() - t0)

        batch_body = json.dumps({"problems": payloads}).encode("utf-8")
        t0 = time.perf_counter()
        conn.request("POST", "/v1/solve-batch", body=batch_body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 200
        batch_payload = json.loads(response.read().decode("utf-8"))
        batch_seconds = time.perf_counter() - t0
        assert batch_payload["count"] == len(payloads)
        conn.close()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    record = {
        "instances": len(problems),
        "engine_cache": {
            "object_cold_ms": cold_obj * 1e3,
            "object_cached_ms": warm_obj * 1e3,
            "object_speedup": speedup_obj,
            "wire_cold_ms": cold_wire * 1e3,
            "wire_cached_ms": warm_wire * 1e3,
            "wire_speedup": speedup_wire,
            "speedup_bar": CACHE_SPEEDUP_BAR,
        },
        "serve": {
            "solve_requests": SERVE_REQUESTS,
            "solve_requests_per_second": solve_rps,
            "batch_instances": len(payloads),
            "batch_seconds": batch_seconds,
            "batch_instances_per_second": len(payloads) / batch_seconds,
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[bench_api] cold {cold_obj * 1e3:.3f} ms -> cached "
          f"{warm_obj * 1e3:.4f} ms per solve ({speedup_obj:.0f}x objects, "
          f"{speedup_wire:.0f}x wire payloads); serve {solve_rps:.0f} req/s, "
          f"batch {len(payloads) / batch_seconds:.0f} instances/s "
          f"-> {BENCH_PATH.name}")

    assert speedup_obj >= CACHE_SPEEDUP_BAR, (
        f"engine-cached repeat solves only {speedup_obj:.1f}x faster than "
        f"cold (bar: {CACHE_SPEEDUP_BAR}x)")
    assert speedup_wire >= CACHE_SPEEDUP_BAR, (
        f"wire-payload cached solves only {speedup_wire:.1f}x faster than "
        f"cold (bar: {CACHE_SPEEDUP_BAR}x)")


def test_columnar_batch_throughput(run_once):
    """10k-instance ``POST /v1/solve-batch`` through the columnar pipeline.

    The PR 8 acceptance measurement: wire JSON is parsed straight into a
    :class:`~repro.core.columnar.ProblemBatch`, cache keys come from the
    vectorized template hasher, and the chain closed form runs over ragged
    arrays -- no per-instance ``Problem`` objects anywhere on the all-miss
    path.  The per-instance throughput must beat the pre-columnar wire
    baseline (~{:.0f} instances/s) by >= {:.0f}x.
    """.format(WIRE_BASELINE_IPS, COLUMNAR_SPEEDUP_BAR)
    from repro.campaign.sweep import expand_problem_batch

    slacks = [1.2, 1.6, 2.0, 2.4]
    batch = expand_problem_batch({
        "structure": "chain",
        "grid": {"num_tasks": [4], "slack": slacks},
        "params": {"weight_decimals": 4},
        "seeds": max(1, COLUMNAR_INSTANCES // len(slacks)),
        "base_seed": 59})
    payloads = list(batch.payloads)[:COLUMNAR_INSTANCES]

    # Service caps off: this is a capacity measurement, not an admission
    # test.  The cache must hold the whole batch so the warm replay below
    # measures the masked peel, not LRU eviction.
    engine = Engine(max_batch=None, cache_size=len(payloads) + 16)
    server = make_server(port=0, engine=engine,
                         max_body_bytes=64 * 1024 * 1024)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        conn = http.client.HTTPConnection(host, port, timeout=300)
        body = json.dumps({"problems": payloads}).encode("utf-8")

        # Steady-state measurement: a disjoint warmup batch takes the
        # one-time process costs (bytecode, allocator growth, template
        # caches) off the timed run, mirroring how the wire baseline was
        # measured after 200 prior requests.
        warmup = expand_problem_batch({
            "structure": "chain", "grid": {"num_tasks": [4]},
            "params": {"weight_decimals": 4},
            "seeds": max(1, min(1000, COLUMNAR_INSTANCES // 10)),
            "base_seed": 104729})
        warm_body = json.dumps(
            {"problems": list(warmup.payloads)}).encode("utf-8")
        conn.request("POST", "/v1/solve-batch", body=warm_body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 200
        response.read()

        # The clock stops when the last response byte is delivered -- the
        # service is done at that point; decoding the payload is client
        # work and is asserted outside the timed window.
        t0 = time.perf_counter()
        conn.request("POST", "/v1/solve-batch", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 200
        cold_bytes = response.read()
        cold_seconds = time.perf_counter() - t0
        cold_payload = json.loads(cold_bytes.decode("utf-8"))
        assert cold_payload["count"] == len(payloads)
        assert cold_payload["cached_count"] == 0

        t0 = time.perf_counter()
        conn.request("POST", "/v1/solve-batch", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 200
        warm_bytes = response.read()
        warm_seconds = time.perf_counter() - t0
        warm_payload = json.loads(warm_bytes.decode("utf-8"))
        assert warm_payload["cached_count"] == len(payloads)
        conn.close()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    cold_ips = len(payloads) / cold_seconds
    warm_ips = len(payloads) / warm_seconds

    record = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    record["columnar_batch"] = {
        "instances": len(payloads),
        "cold_seconds": cold_seconds,
        "cold_instances_per_second": cold_ips,
        "cached_seconds": warm_seconds,
        "cached_instances_per_second": warm_ips,
        "wire_baseline_instances_per_second": WIRE_BASELINE_IPS,
        "speedup_over_wire_baseline": cold_ips / WIRE_BASELINE_IPS,
        "speedup_bar": COLUMNAR_SPEEDUP_BAR,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[bench_api] columnar solve-batch: {len(payloads)} instances in "
          f"{cold_seconds:.3f}s cold ({cold_ips:.0f}/s, "
          f"{cold_ips / WIRE_BASELINE_IPS:.1f}x wire baseline), "
          f"{warm_seconds:.3f}s warm ({warm_ips:.0f}/s) -> {BENCH_PATH.name}")

    assert cold_ips >= COLUMNAR_SPEEDUP_BAR * WIRE_BASELINE_IPS, (
        f"columnar wire path at {cold_ips:.0f} instances/s is only "
        f"{cold_ips / WIRE_BASELINE_IPS:.1f}x the {WIRE_BASELINE_IPS:.0f}/s "
        f"baseline (bar: {COLUMNAR_SPEEDUP_BAR:.0f}x)")
