"""Load harness for multi-worker serving over the persistent result store.

Boots the real ``python -m repro serve`` CLI as a subprocess -- single
server and ``--workers N`` fleets sharing one port -- and measures request
throughput into ``BENCH_serve.json`` at the repository root:

* **cold** -- a fresh store directory: every ``POST /v1/solve`` dispatches
  the TRI-CRIT subset-enumeration solver;
* **warm** -- the *same* store directory behind a freshly restarted server
  (empty in-memory LRU), so every request is answered from the persistent
  tier: this isolates the store read path, not engine memoization;
* **batch** -- ``POST /v1/solve-batch`` at several batch sizes against the
  warm server, measuring instances per second.

The acceptance bar: warm-store throughput at batch size 1 must beat the
cold single-solve throughput by at least 10x.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q -s
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.problem_io import problem_to_dict
from repro.experiments.instances import chain_suite, tricrit_problem

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: Warm-store repeats must beat cold solves by at least this factor.
WARM_SPEEDUP_BAR = 10.0

NUM_INSTANCES = int(os.environ.get("REPRO_BENCH_SERVE_INSTANCES", "24"))
WARM_REPEATS = int(os.environ.get("REPRO_BENCH_SERVE_REPEATS", "3"))
WORKER_COUNTS = tuple(
    int(w) for w in
    os.environ.get("REPRO_BENCH_SERVE_WORKERS", "1,2,4").split(","))
BATCH_SIZES = tuple(
    int(b) for b in
    os.environ.get("REPRO_BENCH_SERVE_BATCH", "1,8").split(","))
STARTUP_TIMEOUT = 60.0


def _payloads():
    """Distinct TRI-CRIT chains: cold solves run the subset-enumeration
    solver, so the cold/warm contrast measures a real workload."""
    specs = chain_suite(sizes=(8,), slacks=(2.0, 2.5, 3.0), seed=61)
    return [problem_to_dict(tricrit_problem(specs[i % len(specs)],
                                            frel=0.8 - 0.004 * i))
            for i in range(NUM_INSTANCES)]


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _boot(workers: int, store_dir: str) -> tuple[subprocess.Popen, int]:
    port = _free_port()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--workers", str(workers), "--store-dir", store_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=os.environ.copy())
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        try:
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
            try:
                conn.request("GET", "/healthz")
                if conn.getresponse().status == 200:
                    return proc, port
            finally:
                conn.close()
        except OSError:
            time.sleep(0.2)
    proc.kill()
    out, _ = proc.communicate(timeout=10)
    raise RuntimeError(f"serve --workers {workers} never became healthy:\n"
                       f"{out}")


def _stop(proc: subprocess.Popen) -> None:
    proc.terminate()
    try:
        proc.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()


def _hammer(port: int, bodies: list[bytes], path: str, clients: int) -> float:
    """Issue every request body once from ``clients`` concurrent
    connections; returns elapsed wall seconds."""
    index = iter(range(len(bodies)))
    lock = threading.Lock()
    failures: list[str] = []

    def run_client() -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            while True:
                with lock:
                    i = next(index, None)
                if i is None:
                    return
                conn.request("POST", path, body=bodies[i],
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                data = response.read()
                if response.status != 200:
                    with lock:
                        failures.append(data.decode("utf-8", "replace")[:200])
                    return
        finally:
            conn.close()

    threads = [threading.Thread(target=run_client) for _ in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert not failures, f"{path} load run failed: {failures[0]}"
    return elapsed


def _measure_config(workers: int, payloads: list[dict]) -> dict:
    clients = max(2, 2 * workers)
    solve_bodies = [json.dumps({"problem": p}).encode("utf-8")
                    for p in payloads]
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store:
        # Cold: fresh store, every request dispatches a solver.
        proc, port = _boot(workers, store)
        try:
            cold_seconds = _hammer(port, solve_bodies, "/v1/solve", clients)
        finally:
            _stop(proc)
        # Warm: same store behind a *restarted* server -- the in-memory
        # LRU is empty, so throughput is the persistent tier's read path.
        proc, port = _boot(workers, store)
        try:
            warm_bodies = solve_bodies * WARM_REPEATS
            warm_seconds = _hammer(port, warm_bodies, "/v1/solve", clients)
            batch = {}
            for size in BATCH_SIZES:
                groups = [payloads[i:i + size]
                          for i in range(0, len(payloads), size)]
                bodies = [json.dumps({"problems": g}).encode("utf-8")
                          for g in groups]
                seconds = _hammer(port, bodies, "/v1/solve-batch", clients)
                batch[str(size)] = {
                    "requests": len(bodies),
                    "instances_per_second": len(payloads) / seconds,
                }
        finally:
            _stop(proc)
    cold_rps = len(solve_bodies) / cold_seconds
    warm_rps = len(warm_bodies) / warm_seconds
    return {
        "workers": workers,
        "clients": clients,
        "cold_requests_per_second": cold_rps,
        "warm_requests_per_second": warm_rps,
        "warm_speedup": warm_rps / cold_rps,
        "batch": batch,
    }


def test_serve_throughput_workers_by_batch():
    payloads = _payloads()
    configs = [_measure_config(w, payloads) for w in WORKER_COUNTS]

    record = {
        "instances": NUM_INSTANCES,
        "warm_repeats": WARM_REPEATS,
        "batch_sizes": list(BATCH_SIZES),
        "warm_speedup_bar": WARM_SPEEDUP_BAR,
        "configs": configs,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    print(f"\n[bench_serve] {NUM_INSTANCES} TRI-CRIT instances, "
          f"workers x batch over a shared persistent store "
          f"-> {BENCH_PATH.name}")
    for cfg in configs:
        batches = ", ".join(
            f"batch {size}: {stats['instances_per_second']:.0f}/s"
            for size, stats in cfg["batch"].items())
        print(f"  workers={cfg['workers']}: cold "
              f"{cfg['cold_requests_per_second']:.1f} req/s, warm-store "
              f"{cfg['warm_requests_per_second']:.0f} req/s "
              f"({cfg['warm_speedup']:.0f}x); {batches}")

    for cfg in configs:
        assert cfg["warm_speedup"] >= WARM_SPEEDUP_BAR, (
            f"workers={cfg['workers']}: warm-store serving only "
            f"{cfg['warm_speedup']:.1f}x faster than cold solves "
            f"(bar: {WARM_SPEEDUP_BAR}x)")
