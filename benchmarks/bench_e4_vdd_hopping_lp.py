"""E4 -- BI-CRIT under VDD-HOPPING is polynomial via a linear program (Sec. IV).

Claims reproduced:

* the LP optimum is sandwiched between the CONTINUOUS optimum (VDD-HOPPING
  "smoothes out the discrete nature of the speeds") and the single-mode
  DISCRETE optimum;
* an optimal solution uses at most two speeds per task, and those two speeds
  are consecutive modes (R11);
* the scipy-HiGHS backend and the in-house simplex agree, so the result does
  not depend on a particular solver.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e4-vdd-lp")


def test_e4_vdd_hopping_lp(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E4: VDD-HOPPING LP vs continuous bound vs discrete optimum")
    for row in rows:
        assert row["vdd_over_continuous"] >= 1.0 - 1e-9
        assert row["discrete_over_vdd"] >= 1.0 - 1e-9
        assert row["max_speeds_per_task"] <= 2
        assert row["consecutive_pairs"]
        if "backend_gap" in row:
            assert row["backend_gap"] < 1e-6
