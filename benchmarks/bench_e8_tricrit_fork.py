"""E8 -- TRI-CRIT on a fork: the paper's polynomial-time algorithm.

Claim reproduced: the breakpoint-scan algorithm (polynomial in the number of
children) returns the same energy as the exhaustive enumeration of all
``2^(n+1)`` re-execution configurations, on forks of growing width and for
several deadline slacks.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e8-tricrit-fork")


def test_e8_fork_polynomial_algorithm_is_exact(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E8: TRI-CRIT fork - polynomial algorithm vs brute force")
    for row in rows:
        assert abs(row["poly_over_brute"] - 1.0) < 1e-3
        assert row["configurations"] == 2 ** (row["children"] + 1)
