"""E8 -- TRI-CRIT on a fork: the paper's polynomial-time algorithm.

Claim reproduced: the breakpoint-scan algorithm (polynomial in the number of
children) returns the same energy as the exhaustive enumeration of all
``2^(n+1)`` re-execution configurations, on forks of growing width and for
several deadline slacks.
"""

from __future__ import annotations

from repro.experiments import print_table, run_tricrit_fork_experiment


def test_e8_fork_polynomial_algorithm_is_exact(run_once):
    rows = run_once(run_tricrit_fork_experiment,
                    sizes=(2, 3, 4, 6), slacks=(2.0, 3.0))
    print_table(rows, title="E8: TRI-CRIT fork - polynomial algorithm vs brute force")
    for row in rows:
        assert abs(row["poly_over_brute"] - 1.0) < 1e-3
        assert row["configurations"] == 2 ** (row["children"] + 1)
