"""Wall-clock harness for the fault-tolerant distributed coordinator.

Runs one fixed E1 instance grid three ways -- serially in-process, across
two spawned ``repro serve`` workers, and across two workers with one
SIGKILLed after the first completion -- and records wall times plus the
coordinator's retry/eviction counters to ``BENCH_campaign_distributed.json``
at the repository root.  Also asserts the subsystem's acceptance
properties: every mode produces byte-identical result payloads, and the
worker-loss run completes with zero errors.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_distributed.py -q -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.campaign import ResultCache, run_campaign
from repro.campaign.distributed import (
    RetryPolicy,
    run_distributed_campaign,
    spawn_local_workers,
    stop_workers,
)
from repro.campaign.registry import get_scenario

BENCH_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_campaign_distributed.json"

#: Quick backoff so the kill scenario's recovery is measured, not slept.
POLICY = RetryPolicy(max_attempts=5, base_delay=0.02, max_delay=0.2,
                     jitter=0.25, request_timeout=60.0, probe_interval=0.1)


def _grid(n=12):
    spec = get_scenario("e1-fork-closed-form")
    return [spec.instance({"sizes": (k,)}, smoke=True)
            for k in range(2, 2 + n)]


def _payloads(outcome):
    return [json.dumps(r.record["result"]).encode() for r in outcome.results]


def test_distributed_campaign_serial_vs_workers_vs_worker_loss(tmp_path):
    grid = _grid()
    n = len(grid)

    t0 = time.perf_counter()
    serial = run_campaign(grid, jobs=1, cache=ResultCache(tmp_path / "serial"))
    serial_seconds = time.perf_counter() - t0
    assert serial.errors == 0
    reference = _payloads(serial)

    # -- two healthy workers -------------------------------------------
    workers = spawn_local_workers(2)
    try:
        t0 = time.perf_counter()
        healthy = run_distributed_campaign(
            grid, workers=[w.address for w in workers], policy=POLICY,
            cache=ResultCache(tmp_path / "workers"))
        healthy_seconds = time.perf_counter() - t0
    finally:
        stop_workers(workers)
    assert healthy.errors == 0
    assert _payloads(healthy) == reference

    # -- two workers, one SIGKILLed after the first completion ---------
    workers = spawn_local_workers(2)
    by_address = {w.address: w for w in workers}
    killed = []

    def kill_first_responder(line):
        if killed or " on 127.0.0.1:" not in line:
            return
        address = line.rsplit(" on ", 1)[1].split(",")[0].strip()
        if address in by_address:
            by_address[address].kill()
            killed.append(address)

    try:
        t0 = time.perf_counter()
        lossy = run_distributed_campaign(
            grid, workers=[w.address for w in workers], policy=POLICY,
            cache=ResultCache(tmp_path / "lossy"),
            progress=kill_first_responder)
        lossy_seconds = time.perf_counter() - t0
    finally:
        stop_workers(workers)
    assert lossy.errors == 0, "sweep must survive the worker loss"
    assert _payloads(lossy) == reference

    record = {
        "benchmark": f"distributed campaign, {n} e1 smoke instances",
        "serial_seconds": round(serial_seconds, 3),
        "two_workers_seconds": round(healthy_seconds, 3),
        "two_workers_one_killed_seconds": round(lossy_seconds, 3),
        "healthy_retries": healthy.retries,
        "healthy_evictions": healthy.evictions,
        "lossy_retries": lossy.retries,
        "lossy_evictions": lossy.evictions,
        "lossy_duplicate_completions": lossy.duplicate_completions,
        "killed_worker": killed[0] if killed else None,
        "instances": n,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\ndistributed campaign ({n} instances): serial "
          f"{serial_seconds:.2f}s, 2 workers {healthy_seconds:.2f}s, "
          f"2 workers -1 killed {lossy_seconds:.2f}s "
          f"({lossy.retries} retries, {lossy.evictions} evictions); "
          f"recorded to {BENCH_PATH.name}")
