"""Perf-regression harness for the pruned TRI-CRIT branch-and-bound.

Times the two public entry points against the acceptance bars of the pruned
search work and records the measurements to ``BENCH_pruned.json`` at the
repository root:

* exact mode certifies the optimum on an n=20 chain (2^20 subsets for the
  blind enumeration) in under 60 seconds, and
* gap mode on an n=500 chain returns a certified optimality gap of at most
  5% -- far past any enumerable size.

A parity row cross-checks the exact mode against the reference chain
enumeration at n=14 so a speed win can never hide a wrong optimum.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_pruned.py -q -s

Set ``REPRO_BENCH_PRUNED_MAX`` to a smaller exact size (e.g. 14) for a CI
smoke run; the record file is only written on a full run so a reduced run
cannot clobber the real measurement.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time
from pathlib import Path

from repro.continuous.tricrit_chain import solve_tricrit_chain_exact
from repro.core.problems import TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform
from repro.solvers.pruned import solve_tricrit_pruned, solve_tricrit_pruned_gap

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_pruned.json"

#: Largest exact-mode instance exercised (20 on a full run; reduce in CI).
EXACT_MAX = int(os.environ.get("REPRO_BENCH_PRUNED_MAX", "20"))

#: Acceptance bars from the pruned-search issue.
EXACT_SECONDS_BAR = 60.0
GAP_BAR = 0.05
GAP_TASKS = 500


def make_chain(n: int, *, seed: int, slack: float = 1.8,
               lambda0: float = 1e-3) -> TriCritProblem:
    graph = generators.random_chain(n, seed=seed)
    mapping = Mapping.single_processor(graph)
    reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=lambda0)
    platform = Platform(1, ContinuousSpeeds(0.1, 1.0),
                        reliability_model=reliability)
    return TriCritProblem(mapping, platform, slack * graph.total_weight())


def _timed(fn, *args, **kwargs):
    """Best of two runs: scheduler noise on a shared container is real."""
    best = math.inf
    result = None
    for _ in range(2):
        gc.collect()
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_pruned_exact_and_gap_bars():
    rows = []

    # Parity guard: the speedup must not come from a wrong answer.
    parity_problem = make_chain(14, seed=11)
    reference = solve_tricrit_chain_exact(parity_problem)
    pruned, seconds = _timed(solve_tricrit_pruned, make_chain(14, seed=11))
    assert math.isclose(pruned.energy, reference.energy,
                        rel_tol=1e-9, abs_tol=1e-12)
    rows.append({"mode": "parity", "tasks": 14, "seconds": round(seconds, 4),
                 "energy": pruned.energy,
                 "subsets_evaluated": pruned.metadata["subsets_evaluated"]})

    # Exact bar: n=20 (2^20 enumerated subsets) certified optimal in <60 s.
    result, seconds = _timed(solve_tricrit_pruned, make_chain(EXACT_MAX, seed=4))
    assert result.status == "optimal"
    assert result.metadata["optimality_gap"] == 0.0
    rows.append({"mode": "exact", "tasks": EXACT_MAX,
                 "seconds": round(seconds, 4), "energy": result.energy,
                 "nodes": result.metadata["nodes"],
                 "subsets_evaluated": result.metadata["subsets_evaluated"]})

    # Gap bar: n=500, certified gap <= 5% (bound from the Lagrangian dual).
    gap_result, gap_seconds = _timed(solve_tricrit_pruned_gap,
                                     make_chain(GAP_TASKS, seed=8))
    assert gap_result.feasible
    gap = gap_result.metadata["optimality_gap"]
    assert gap <= GAP_BAR, f"certified gap {gap:.4f} exceeds {GAP_BAR}"
    rows.append({"mode": "gap", "tasks": GAP_TASKS,
                 "seconds": round(gap_seconds, 4), "energy": gap_result.energy,
                 "optimality_gap": gap,
                 "lower_bound": gap_result.metadata["lower_bound"],
                 "nodes": gap_result.metadata["nodes"]})

    for row in rows:
        extra = (f" gap={row['optimality_gap']:.4f}"
                 if "optimality_gap" in row else "")
        print(f"\n{row['mode']:>7} n={row['tasks']:<4} "
              f"{row['seconds']:.3f}s energy={row['energy']:.4f}{extra}")

    full_run = EXACT_MAX >= 20
    if full_run:
        assert seconds <= EXACT_SECONDS_BAR, (
            f"exact n={EXACT_MAX} took {seconds:.1f}s, bar is "
            f"{EXACT_SECONDS_BAR:.0f}s")
        record = {
            "benchmark": "pruned TRI-CRIT branch-and-bound: exact mode at "
                         "n=20 (vs 2^20 enumeration) and gap mode at n=500",
            "bars": {"exact_seconds": EXACT_SECONDS_BAR, "gap": GAP_BAR},
            "rows": rows,
        }
        BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nrecorded to {BENCH_PATH.name}")


def test_gap_mode_beats_enumeration_wall_clock():
    """At n=14 the pruned exact search must beat the blind enumeration."""
    _, enum_seconds = _timed(solve_tricrit_chain_exact, make_chain(14, seed=11))
    _, pruned_seconds = _timed(solve_tricrit_pruned, make_chain(14, seed=11))
    # Generous factor: both sit well under a second, scheduler noise is real.
    assert pruned_seconds < max(enum_seconds, 0.05)
