"""Wall-clock harness for the campaign orchestration subsystem.

Runs the built-in ``all`` campaign at smoke size four ways -- cold cache
serially, cold cache with worker processes, then warm-cache repeats of both
-- and records the timings to ``BENCH_campaign.json`` at the repository
root, so successive PRs can compare orchestration overhead.  Also asserts
the subsystem's acceptance properties: a warm re-run serves *every*
instance from cache with identical result records, and the orchestration
layers add no meaningful overhead on a warm cache.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_campaign.py -q -s

``REPRO_CAMPAIGN_JOBS`` picks the parallel worker count (default 2, the CI
setting); the smoke trial counts honour ``REPRO_E11_TRIALS`` and
``REPRO_BENCH_TRIALS`` like the rest of the harness.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.campaign import (
    ResultCache,
    all_scenarios_campaign,
    expand_campaign,
    run_campaign,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_campaign.json"
JOBS = int(os.environ.get("REPRO_CAMPAIGN_JOBS", "2"))


def _timed_run(instances, *, jobs, cache, refresh=False):
    t0 = time.perf_counter()
    outcome = run_campaign(instances, jobs=jobs, cache=cache, refresh=refresh)
    return time.perf_counter() - t0, outcome


def test_campaign_serial_vs_parallel_and_cold_vs_warm(tmp_path):
    instances = expand_campaign(all_scenarios_campaign(), smoke=True)
    n = len(instances)

    serial_cache = ResultCache(tmp_path / "serial")
    parallel_cache = ResultCache(tmp_path / "parallel")

    cold_serial, out_cold_serial = _timed_run(instances, jobs=1,
                                              cache=serial_cache)
    cold_parallel, out_cold_parallel = _timed_run(instances, jobs=JOBS,
                                                  cache=parallel_cache)
    warm_serial, out_warm_serial = _timed_run(instances, jobs=1,
                                              cache=serial_cache)
    warm_parallel, out_warm_parallel = _timed_run(instances, jobs=JOBS,
                                                  cache=parallel_cache)

    # Cold runs executed everything; warm re-runs are pure cache reads.
    for outcome in (out_cold_serial, out_cold_parallel):
        assert outcome.errors == 0
        assert (outcome.hits, outcome.misses) == (0, n)
    for outcome in (out_warm_serial, out_warm_parallel):
        assert outcome.errors == 0
        assert (outcome.hits, outcome.misses) == (n, 0)

    # The warm records are byte-identical to what the cold run produced.
    for cold, warm in zip(out_cold_serial.results, out_warm_serial.results):
        assert cold.key == warm.key
        assert cold.record == warm.record

    # Warm-cache orchestration is near-instant next to any cold run.
    assert warm_serial < max(0.25 * cold_serial, 0.5)
    assert warm_parallel < max(0.25 * cold_parallel, 0.5)

    record = {
        "benchmark": f"python -m repro campaign all --smoke ({n} scenarios)",
        "jobs": JOBS,
        "cold_serial_seconds": round(cold_serial, 3),
        "cold_parallel_seconds": round(cold_parallel, 3),
        "warm_serial_seconds": round(warm_serial, 3),
        "warm_parallel_seconds": round(warm_parallel, 3),
        "parallel_speedup": round(cold_serial / cold_parallel, 2)
        if cold_parallel > 0 else None,
        "warm_speedup_vs_cold_serial": round(cold_serial / warm_serial, 1)
        if warm_serial > 0 else None,
        "instances": n,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\ncampaign all --smoke: cold serial {cold_serial:.2f}s, "
          f"cold --jobs {JOBS} {cold_parallel:.2f}s, warm serial "
          f"{warm_serial:.3f}s, warm --jobs {JOBS} {warm_parallel:.3f}s; "
          f"recorded to {BENCH_PATH.name}")
