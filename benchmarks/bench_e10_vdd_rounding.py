"""E10 -- Adapting the CONTINUOUS heuristics to VDD-HOPPING (paper Section IV).

Claim reproduced: a CONTINUOUS TRI-CRIT solution can be executed under the
VDD-HOPPING model by replacing each continuous speed with the two closest
bracketing modes while matching the execution time and the reliability; the
benchmark quantifies the performance loss the paper leaves open ("there
remains to quantify the performance loss incurred"), showing it stays small
and shrinks as the number of available modes grows.
"""

from __future__ import annotations

from collections import defaultdict

from repro.campaign import get_scenario
from repro.experiments import mixed_suite, print_table

SCENARIO = get_scenario("e10-vdd-rounding")


def test_e10_vdd_adaptation_loss(run_once):
    # The timed table uses the first four suite instances (chains + forks);
    # the campaign default sweeps the whole mixed suite.
    rows = run_once(SCENARIO.run, specs=mixed_suite(seed=43)[:4])
    print_table(rows, title="E10: continuous -> VDD-HOPPING adaptation loss")
    for row in rows:
        assert row["feasible"]
        assert row["adaptation_loss"] >= -1e-6          # never cheaper than the source
        assert row["adaptation_loss"] < 0.6              # bounded loss
    # More modes => no larger loss, per instance (averaged trend).
    by_instance = defaultdict(dict)
    for row in rows:
        by_instance[row["instance"]][row["modes"]] = row["adaptation_loss"]
    better_or_equal = 0
    total = 0
    for losses in by_instance.values():
        if 3 in losses and 9 in losses:
            total += 1
            if losses[9] <= losses[3] + 1e-6:
                better_or_equal += 1
    assert better_or_equal >= max(1, total - 1)
