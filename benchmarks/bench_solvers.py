"""Wall-clock harness for the solver registry and dispatcher.

Measures two things and records them to ``BENCH_solvers.json`` at the
repository root:

* **dispatch overhead** -- the cost ``solve(problem, solver=...)`` adds on
  top of calling the underlying function directly (admissibility checks +
  option merging + metadata), and the cost of a bare ``select_solver`` scan
  on a warm :class:`~repro.solvers.SolverContext`.  Both must stay
  negligible against any real solve;
* **per-solver runtime** -- every admissible registry solver timed once on
  the canonical E13 instance set (one instance per DAG family), which is
  the quantitative face of the capability table: exact enumerations cost
  orders of magnitude more than the closed forms and heuristics they
  validate.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_solvers.py -q -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.continuous.heuristics import solve_tricrit_no_reexec
from repro.experiments import print_table
from repro.experiments.instances import (
    chain_suite,
    fork_suite,
    layered_suite,
    series_parallel_suite,
    tricrit_problem,
)
from repro.solvers import SolverContext, admissible_solvers, select_solver, solve

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_solvers.json"

#: Calls per timing loop for the overhead measurements.
OVERHEAD_CALLS = 50
SELECT_CALLS = 2000


def _canonical_instances():
    return {
        "chain": tricrit_problem(chain_suite(sizes=(5,), slacks=(2.0,), seed=59)[0]),
        "fork": tricrit_problem(fork_suite(sizes=(5,), slacks=(2.0,), seed=1059)[0]),
        "series-parallel": tricrit_problem(
            series_parallel_suite(sizes=(5,), slacks=(2.0,), seed=2059)[0]),
        "dag": tricrit_problem(layered_suite(shapes=((3, 2),), num_processors=3,
                                             slacks=(2.0,), seed=3059)[0]),
    }


def _timed(func, calls):
    t0 = time.perf_counter()
    for _ in range(calls):
        func()
    return (time.perf_counter() - t0) / calls


def test_dispatch_overhead_and_per_solver_runtimes():
    instances = _canonical_instances()
    problem = instances["chain"]
    # Warm the memoized context so the overhead loop measures steady state.
    SolverContext.for_problem(problem).structure

    direct = _timed(lambda: solve_tricrit_no_reexec(problem), OVERHEAD_CALLS)
    dispatched = _timed(lambda: solve(problem, solver="tricrit-no-reexec"),
                        OVERHEAD_CALLS)
    select = _timed(lambda: select_solver(problem), SELECT_CALLS)
    overhead = {
        "direct_call_seconds": direct,
        "dispatched_call_seconds": dispatched,
        "overhead_seconds_per_call": dispatched - direct,
        "select_solver_seconds": select,
        "overhead_calls": OVERHEAD_CALLS,
    }

    per_solver = []
    for family, prob in instances.items():
        for solver in admissible_solvers(prob):
            t0 = time.perf_counter()
            result = solve(prob, solver=solver.name)
            elapsed = time.perf_counter() - t0
            per_solver.append({
                "family": family,
                "tasks": prob.graph.num_tasks,
                "solver": solver.name,
                "exactness": solver.exactness,
                "seconds": elapsed,
                "energy": result.energy,
                "status": result.status,
            })

    print_table([{"metric": k, "value": v} for k, v in overhead.items()],
                title="solver dispatch overhead")
    print_table(per_solver, title="per-solver runtime on the canonical instances")

    BENCH_PATH.write_text(json.dumps(
        {"overhead": overhead, "per_solver": per_solver}, indent=1))

    # Selection on a warm context is micro-scale, and the full dispatch
    # wrapper adds at most a small fraction of the cheapest real solve
    # (generous bounds: this is a shared CI box).
    assert select < 5e-3
    assert dispatched - direct < max(0.5 * direct, 5e-3)
    # Every admissible solver completed on every canonical instance.
    assert all(row["status"] in ("optimal", "feasible") for row in per_solver)
