"""E3 -- General DAGs as a convex (geometric) program (paper Section III).

Claim reproduced: for arbitrary mapped DAGs the BI-CRIT CONTINUOUS problem is
a convex program solvable numerically; treating the schedule "as a whole"
saves substantially more energy than the local backfilling-style slack
reclamation the paper contrasts with, and of course than running everything
at ``fmax``.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e3-convex-dag")


def test_e3_convex_dag_beats_local_baselines(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E3: global convex optimum vs baselines on mapped DAGs")
    for row in rows:
        assert row["lower_bound"] <= row["convex_energy"] * (1 + 1e-6)
        assert row["convex_energy"] <= row["local_reclaiming"] + 1e-6
        assert row["convex_energy"] <= row["uniform_slowdown"] + 1e-6
        assert row["convex_energy"] <= row["no_dvfs"] + 1e-9
        assert row["saving_vs_no_dvfs"] > 0.3  # well over 30% energy saved
