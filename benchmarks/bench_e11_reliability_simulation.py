"""E11 -- DVFS degrades reliability; re-execution restores it (paper Section II).

The motivation of the TRI-CRIT problem, validated by Monte-Carlo fault
injection against the analytic model:

* lowering the execution speed lowers both the energy and the probability
  that the whole application completes without a transient fault;
* scheduling a re-execution restores the reliability above the
  single-execution level, at a bounded worst-case energy cost, while the
  *observed* (simulated) energy stays close to the single-execution energy
  because second executions rarely run;
* the analytic reliability model agrees with the simulation within the
  binomial confidence interval -- the model the optimisation relies on is
  trustworthy.
"""

from __future__ import annotations

import os

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e11-reliability-simulation")

#: CI smoke runs set this to a small value (e.g. 500); the qualitative
#: assertions below are robust down to a few hundred trials.
TRIALS = int(os.environ.get("REPRO_E11_TRIALS", "4000"))


def test_e11_reliability_energy_tradeoff(run_once):
    rows = run_once(SCENARIO.run, trials=TRIALS)
    print_table(rows, title="E11: Monte-Carlo reliability vs analytic model")
    assert all(row["analytic_within_confidence"] for row in rows)
    # Reliability decreases as the speed decreases (single execution).
    reliabilities = [row["single_analytic_reliability"] for row in rows]
    assert all(a >= b - 1e-12 for a, b in zip(reliabilities[:-1], reliabilities[1:]))
    for row in rows:
        assert row["reexec_analytic_reliability"] >= row["single_analytic_reliability"] - 1e-12
        assert row["reexec_worst_case_energy"] >= row["single_energy"] - 1e-9
        # Observed energy of the re-executed schedule stays well below its
        # worst case (successful first attempts cancel the retry).
        assert row["reexec_mean_simulated_energy"] <= row["reexec_worst_case_energy"] + 1e-9
