"""E5 -- BI-CRIT DISCRETE / INCREMENTAL is NP-complete (paper Section IV).

Claims reproduced executably:

* the 2-PARTITION reduction: deciding whether the constructed scheduling
  instance admits a schedule within the energy budget answers 2-PARTITION
  correctly on every tested instance (yes and no instances);
* solving the DISCRETE problem exactly takes exponentially growing effort in
  the instance size, while the VDD-HOPPING LP of the same instances grows
  polynomially -- the complexity separation at the heart of Section IV.
"""

from __future__ import annotations

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e5-np-hardness")


def test_e5_np_hardness_reduction_and_scaling(run_once):
    out = run_once(SCENARIO.run)
    print_table(out["reduction_rows"],
                title="E5a: 2-PARTITION -> BI-CRIT DISCRETE reduction",
                columns=["instance", "optimal_energy", "energy_budget",
                         "scheduling_answer", "partition_answer", "agree"])
    print_table(out["exact_scaling"], title="E5b: exact DISCRETE solver effort")
    print_table(out["lp_scaling"], title="E5c: VDD-HOPPING LP size (same instances)")
    assert all(row["agree"] for row in out["reduction_rows"])
    assert any(row["partition_answer"] for row in out["reduction_rows"])
    assert any(not row["partition_answer"] for row in out["reduction_rows"])
    assert out["exact_fit"]["exponential_fits_better"]
    assert not out["lp_fit"]["exponential_fits_better"]
    assert out["lp_fit"]["polynomial_degree"] < 2.0
