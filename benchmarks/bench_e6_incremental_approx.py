"""E6 -- Approximation algorithm for the INCREMENTAL model (paper Section IV).

Claim reproduced: the solution produced in polynomial time is within
``(1 + delta/fmin)^2 (1 + 1/K)^2`` of the optimal energy, for every tested
``delta`` (speed increment) and ``K`` (discretisation refinement), on chains
and on mapped DAGs.  The measured ratio (against the continuous lower bound,
which is itself a lower bound on the INCREMENTAL optimum) must never exceed
the guaranteed factor, and it approaches 1 as ``delta`` shrinks.
"""

from __future__ import annotations

from collections import defaultdict

from repro.campaign import get_scenario
from repro.experiments import print_table

SCENARIO = get_scenario("e6-incremental-approx")


def test_e6_incremental_approximation_factor(run_once):
    rows = run_once(SCENARIO.run)
    print_table(rows, title="E6: INCREMENTAL approximation ratio vs guaranteed factor")
    assert all(row["within_bound"] for row in rows)
    # Smaller delta => better ratio (monotone trend on the exact-relaxation rows).
    by_instance = defaultdict(list)
    for row in rows:
        if row["K"] == "exact":
            by_instance[row["instance"]].append((row["delta"], row["measured_ratio"]))
    for pairs in by_instance.values():
        pairs.sort()
        assert pairs[0][1] <= pairs[-1][1] + 1e-9
