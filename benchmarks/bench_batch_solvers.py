"""Perf-regression harness for the batched solver evaluation kernel.

Times a per-instance ``solve()`` loop against ``solve_batch`` on growing
instance batches (10 / 100 / 1000) for the closed-form solver families the
kernel vectorizes -- BI-CRIT chains, BI-CRIT forks, auto-dispatch over a
chain grid, and the TRI-CRIT chain subset enumeration -- and records the
measurements to ``BENCH_batch_solvers.json`` at the repository root.  The
acceptance bar of the batch-kernel work -- at least a 5x batch-vs-scalar
speedup at 1000-instance batches for the closed-form solvers -- is asserted
here.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_solvers.py -q -s

Set ``REPRO_BENCH_BATCH_MAX`` to a smaller cap (e.g. 100) for a CI smoke
run; the speedup assertion is relaxed there because fixed overhead dominates
tiny batches, and the record file is left alone so a reduced run cannot
clobber the full measurement.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.core.problems import BiCritProblem, TriCritProblem
from repro.core.reliability import ReliabilityModel
from repro.core.speeds import ContinuousSpeeds
from repro.dag import generators
from repro.platform.mapping import Mapping
from repro.platform.platform import Platform
from repro.solvers import solve, solve_batch

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_batch_solvers.json"

#: Largest batch size exercised (1000 on a full run; reduce via env in CI).
BATCH_MAX = int(os.environ.get("REPRO_BENCH_BATCH_MAX", "1000"))
BATCH_SIZES = tuple(s for s in (10, 100, 1000) if s <= BATCH_MAX)

#: The TRI-CRIT subset enumeration is ~1000x costlier per scalar instance
#: than the closed forms, so its batches are capped to keep the harness fast.
TRICRIT_CAP = min(BATCH_MAX, 100)


def make_chains(count: int, *, size: int = 8, seed: int = 0,
                tricrit: bool = False) -> list[BiCritProblem]:
    """Fresh single-processor chain instances (fresh => cold contexts)."""
    rng = np.random.default_rng(seed)
    problems = []
    for _ in range(count):
        graph = generators.random_chain(size, seed=int(rng.integers(1 << 30)))
        mapping = Mapping.single_processor(graph)
        slack = float(rng.uniform(1.3, 3.0))
        if tricrit:
            reliability = ReliabilityModel(fmin=0.1, fmax=1.0, lambda0=1e-4,
                                           sensitivity=3.0)
            platform = Platform(1, ContinuousSpeeds(0.1, 1.0),
                                reliability_model=reliability)
            problems.append(TriCritProblem(mapping, platform,
                                           slack * graph.total_weight()))
        else:
            platform = Platform(1, ContinuousSpeeds(0.1, 10.0))
            problems.append(BiCritProblem(mapping, platform,
                                          slack * graph.total_weight()))
    return problems


def make_forks(count: int, *, children: int = 6, seed: int = 1) -> list[BiCritProblem]:
    """Fresh fully parallel fork instances.

    The speed range is wide (E1's canonical setting), so the closed-form
    fork theorem applies without ``fmin`` clamping -- this benchmark times
    the vectorized formula, not the convex fallback both engines share.
    """
    rng = np.random.default_rng(seed)
    problems = []
    for _ in range(count):
        graph = generators.random_fork(children, seed=int(rng.integers(1 << 30)))
        mapping = Mapping.one_task_per_processor(graph)
        platform = Platform(children + 1, ContinuousSpeeds(0.001, 50.0))
        slack = float(rng.uniform(1.3, 3.0))
        problems.append(BiCritProblem(mapping, platform,
                                      slack * graph.critical_path_weight()))
    return problems


def _time_pair(maker, count: int, solver: str) -> dict:
    """Time a scalar solve loop vs one solve_batch call on fresh instances.

    A garbage collection runs before each timed segment so that allocation
    debt from earlier (heavier) rows is not charged to whichever engine
    happens to run when the collector fires, and each engine is timed twice
    on fresh instances with the faster run kept (scheduler noise on a shared
    single-CPU container easily doubles a 10 ms measurement).
    """
    scalar_seconds = math.inf
    batch_seconds = math.inf
    scalar: list = []
    batch: list = []
    for _ in range(2):
        scalar_problems = maker(count)
        gc.collect()
        t0 = time.perf_counter()
        scalar = [solve(p, solver=solver) for p in scalar_problems]
        scalar_seconds = min(scalar_seconds, time.perf_counter() - t0)

        batch_problems = maker(count)
        gc.collect()
        t0 = time.perf_counter()
        batch = solve_batch(batch_problems, solver=solver)
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)

    # The point of the exercise is a *correct* fast path: the two engines
    # must agree on every instance of every timed batch.
    for s, b in zip(scalar, batch):
        assert s.status == b.status
        if math.isfinite(s.energy):
            assert math.isclose(s.energy, b.energy, rel_tol=1e-7, abs_tol=1e-9)
    return {
        "batch_size": count,
        "solver": solver,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(scalar_seconds / batch_seconds, 2)
        if batch_seconds > 0 else math.inf,
        "per_instance_scalar_us": round(scalar_seconds / count * 1e6, 1),
        "per_instance_batch_us": round(batch_seconds / count * 1e6, 1),
    }


def test_batch_solver_speedup_and_equivalence():
    rows = []
    for count in BATCH_SIZES:
        rows.append({"family": "chain",
                     **_time_pair(make_chains, count, "bicrit-closed-form")})
        rows.append({"family": "chain", **_time_pair(make_chains, count, "auto")})
        rows.append({"family": "fork",
                     **_time_pair(make_forks, count, "bicrit-closed-form")})
        if count <= TRICRIT_CAP:
            rows.append({"family": "tricrit-chain",
                         **_time_pair(
                             lambda n: make_chains(n, size=6, seed=2,
                                                   tricrit=True),
                             count, "tricrit-chain-exact")})

    for row in rows:
        print(f"\n{row['family']:>13} {row['solver']:<22} n={row['batch_size']:<5}"
              f" scalar {row['scalar_seconds']:.4f}s batch "
              f"{row['batch_seconds']:.4f}s = {row['speedup']}x")

    full_run = BATCH_MAX >= 1000
    if full_run:
        record = {
            "benchmark": "solve() loop vs solve_batch() on fresh instance "
                         "batches (closed-form chain/fork, auto dispatch, "
                         "TRI-CRIT chain subset enumeration)",
            "instances": {"chain_tasks": 8, "fork_children": 6,
                          "tricrit_chain_tasks": 6},
            "rows": rows,
        }
        BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\nrecorded to {BENCH_PATH.name}")
        # Acceptance bar: >= 5x for the closed-form solvers at 1000 instances.
        for row in rows:
            if row["batch_size"] >= 1000 and row["solver"] == "bicrit-closed-form":
                assert row["speedup"] >= 5.0, (
                    f"{row['family']} closed form only {row['speedup']}x at "
                    f"batch_size={row['batch_size']}")
    else:
        # Reduced smoke: fixed overhead dominates tiny batches, so only
        # sanity is asserted and the record file is left untouched.
        assert all(row["speedup"] > 0.5 for row in rows)


def test_batch_scales_sublinearly_in_instances():
    """10x the instances must cost far less than 10x the batch wall time."""
    solve_batch(make_chains(10), solver="bicrit-closed-form")  # warm imports
    gc.collect()
    t0 = time.perf_counter()
    solve_batch(make_chains(50, seed=3), solver="bicrit-closed-form")
    small = time.perf_counter() - t0
    gc.collect()
    t0 = time.perf_counter()
    solve_batch(make_chains(500, seed=4), solver="bicrit-closed-form")
    large = time.perf_counter() - t0
    # Both runs sit in the millisecond range where scheduler noise dominates,
    # so the bound is deliberately generous.
    assert large < max(10 * small, 0.05)
